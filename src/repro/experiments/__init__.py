"""Experiment drivers: one module per table/figure of the paper's evaluation.

==========================  =================================================
Module                      Regenerates
==========================  =================================================
``table1_primitives``       Table 1 (available transformation primitives)
``fig3_fisher_filter``      Figure 3 (Fisher Potential rejection filter)
``fig4_end_to_end``         Figure 4 (TVM vs NAS vs Ours, 3 nets x 4 targets)
``fig5_sequence_frequency`` Figure 5 (frequency of sequence application)
``fig6_layerwise``          Figure 6 (layer-wise sequences, ResNet-34 on i7)
``fig7_fbnet``              Figure 7 (comparison against FBNet)
``fig8_imagenet``           Figure 8 (ImageNet accuracy vs inference time)
``fig9_interpolation``      Figure 9 (interpolating between NAS models)
``analysis_search``         §7.2 accuracy / size / search-time analysis
``analysis_predictor``      predictor-guided search vs. classic strategies
``deploy_study``            §1 deployment study (one network, four targets)
==========================  =================================================

Every driver registers an :class:`~repro.experiments.registry.ExperimentSpec`
in the declarative registry, which is how the CLI (``python -m repro run
<name>``), the tests and the benchmark harness drive it; ``run(scale=...)``
returns a structured result and ``format_report(result)`` renders the same
rows/series the paper reports.
"""

from repro.experiments import (  # noqa: F401
    analysis_predictor,
    analysis_search,
    deploy_study,
    fig3_fisher_filter,
    fig4_end_to_end,
    fig5_sequence_frequency,
    fig6_layerwise,
    fig7_fbnet,
    fig8_imagenet,
    fig9_interpolation,
    table1_primitives,
)
from repro.experiments.common import ExperimentScale, get_scale
from repro.experiments.registry import (
    EXPERIMENT_REGISTRY,
    ExperimentRun,
    ExperimentSpec,
    experiment_names,
    get_experiment,
    register_experiment,
    run_experiment,
)

__all__ = [
    "analysis_predictor",
    "analysis_search", "deploy_study", "fig3_fisher_filter", "fig4_end_to_end",
    "fig5_sequence_frequency", "fig6_layerwise", "fig7_fbnet", "fig8_imagenet",
    "fig9_interpolation", "table1_primitives", "ExperimentScale", "get_scale",
    "EXPERIMENT_REGISTRY", "ExperimentRun", "ExperimentSpec",
    "experiment_names", "get_experiment", "register_experiment", "run_experiment",
]
