"""§7.2 analysis: accuracy, size, and search time of the unified approach.

The paper reports that (i) CIFAR-10 accuracy changes stay under 1% in
absolute terms, (ii) networks compress 2-3x in size, and (iii) the search
explores 1000 configurations in under five minutes on a CPU, discarding
roughly 90% of candidate transformation sequences through the Fisher
Potential legality check.  The driver measures all three for one network.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.search import UnifiedSearch
from repro.core.unified_space import UnifiedSpaceConfig
from repro.data import test_loader, train_loader
from repro.experiments.common import (
    ExperimentScale,
    cifar_dataset,
    cifar_model_builders,
    evaluation_engine,
    format_table,
    get_scale,
)
from repro.experiments.registry import (
    ExperimentSpec,
    main as registry_main,
    register_experiment,
)
from repro.hardware import get_platform
from repro.nn.trainer import proxy_fit


@dataclass
class AnalysisResult:
    network: str
    original_accuracy: float
    optimized_accuracy: float
    original_parameters: int
    optimized_parameters: int
    search_seconds: float
    configurations_evaluated: int
    rejection_rate: float
    speedup: float
    #: which primitive (or the network Fisher check) killed rejected
    #: candidates — the differentiated face of ``rejection_rate``
    rejections_by_primitive: dict[str, int] | None = None

    @property
    def accuracy_delta(self) -> float:
        return self.optimized_accuracy - self.original_accuracy

    @property
    def compression_ratio(self) -> float:
        return self.original_parameters / max(self.optimized_parameters, 1)


def run(scale: str | ExperimentScale = "ci", seed: int = 0,
        network: str = "ResNet-34", platform: str = "cpu",
        strategy: str = "greedy") -> AnalysisResult:
    scale = get_scale(scale)
    builder = cifar_model_builders(scale)[network]
    dataset = cifar_dataset(scale, seed=seed)
    plat = get_platform(platform)
    images, labels = dataset.random_minibatch(scale.pipeline.fisher_batch, seed=seed)
    loader = train_loader(dataset, batch_size=scale.proxy_batch, seed=seed)
    held_out = test_loader(dataset)

    original_fit = proxy_fit(builder(), loader, held_out, epochs=scale.proxy_epochs)

    search_model = builder()
    search = UnifiedSearch(plat, configurations=scale.pipeline.configurations,
                           strategy=strategy,
                           space=UnifiedSpaceConfig(seed=seed), seed=seed,
                           engine=evaluation_engine(plat, scale, seed=seed))
    outcome = search.search(search_model, images, labels, dataset.spec.image_shape)
    optimized = search.materialize(builder(), outcome, seed=seed)
    optimized_fit = proxy_fit(optimized, loader, held_out, epochs=scale.proxy_epochs)

    return AnalysisResult(
        network=network,
        original_accuracy=100.0 * original_fit.final_accuracy,
        optimized_accuracy=100.0 * optimized_fit.final_accuracy,
        original_parameters=builder().num_parameters(),
        optimized_parameters=optimized.num_parameters(),
        search_seconds=outcome.statistics.search_seconds,
        configurations_evaluated=outcome.statistics.configurations_evaluated,
        rejection_rate=outcome.statistics.rejection_rate,
        speedup=outcome.speedup,
        rejections_by_primitive=dict(outcome.statistics.rejections_by_primitive),
    )


def format_report(result: AnalysisResult) -> str:
    rows = [
        ("accuracy (original -> ours)", f"{result.original_accuracy:.1f}% -> "
                                        f"{result.optimized_accuracy:.1f}%"),
        ("accuracy delta", f"{result.accuracy_delta:+.2f} points"),
        ("parameters (original -> ours)", f"{result.original_parameters} -> "
                                          f"{result.optimized_parameters}"),
        ("compression", f"{result.compression_ratio:.2f}x"),
        ("estimated speedup", f"{result.speedup:.2f}x"),
        ("search time", f"{result.search_seconds:.1f}s"),
        ("candidates evaluated", str(result.configurations_evaluated)),
        ("rejection rate", f"{100 * result.rejection_rate:.0f}%"),
        ("rejections by primitive", ", ".join(
            f"{name}:{count}" for name, count in
            sorted((result.rejections_by_primitive or {}).items(),
                   key=lambda item: -item[1])) or "none"),
    ]
    table = format_table(["quantity", "value"], rows)
    return f"Search analysis ({result.network})\n{table}"


def to_payload(result: AnalysisResult) -> dict:
    return {
        "network": result.network,
        "original_accuracy": result.original_accuracy,
        "optimized_accuracy": result.optimized_accuracy,
        "accuracy_delta": result.accuracy_delta,
        "original_parameters": result.original_parameters,
        "optimized_parameters": result.optimized_parameters,
        "compression_ratio": result.compression_ratio,
        "search_seconds": result.search_seconds,
        "configurations_evaluated": result.configurations_evaluated,
        "rejection_rate": result.rejection_rate,
        "speedup": result.speedup,
        "rejections_by_primitive": dict(result.rejections_by_primitive or {}),
    }


register_experiment(ExperimentSpec(
    name="analysis",
    title="§7.2 analysis: accuracy, size and search time of the unified approach",
    description=__doc__.strip().splitlines()[0],
    run=run, report=format_report, payload=to_payload,
    options=("network", "platform", "strategy"),
))


if __name__ == "__main__":  # pragma: no cover - manual entry point
    raise SystemExit(registry_main("analysis"))
