"""Figure 5: frequency of operation application.

The paper counts how often the Table-1 operations appear in the
best-performing networks found by the unified search, per network:
ResNeXt-29 has the fewest instances (fewest layers) and DenseNet-161 the
most.  The driver runs the unified search on the three networks (on the
Intel i7 platform, as in the case studies) and reports, for every network,
how often each primitive was applied — derived directly from the chosen
transform programs' primitive applications in the sequence IR.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.search import UnifiedSearch
from repro.core.unified_space import UnifiedSpaceConfig
from repro.experiments.common import (
    CIFAR_NETWORKS,
    ExperimentScale,
    cifar_dataset,
    cifar_model_builders,
    format_table,
    get_scale,
)
from repro.experiments.registry import (
    ExperimentSpec,
    main as registry_main,
    register_experiment,
)
from repro.hardware import get_platform


@dataclass
class Fig5Result:
    #: per network: primitive name -> number of applications in the chosen
    #: configuration (a five-step program contributes five counts)
    frequencies: dict[str, dict[str, int]] = field(default_factory=dict)
    #: per network: how many layers received a neural program
    neural_layer_counts: dict[str, int] = field(default_factory=dict)
    layer_counts: dict[str, int] = field(default_factory=dict)

    def count(self, network: str, primitive: str) -> int:
        return self.frequencies.get(network, {}).get(primitive, 0)

    def total(self, network: str) -> int:
        return sum(self.frequencies.get(network, {}).values())


def run(scale: str | ExperimentScale = "ci", seed: int = 0,
        networks: tuple[str, ...] = CIFAR_NETWORKS, platform: str = "cpu") -> Fig5Result:
    scale = get_scale(scale)
    builders = cifar_model_builders(scale)
    dataset = cifar_dataset(scale, seed=seed)
    images, labels = dataset.random_minibatch(scale.pipeline.fisher_batch, seed=seed)
    result = Fig5Result()
    for network in networks:
        model = builders[network]()
        search = UnifiedSearch(get_platform(platform),
                               configurations=scale.pipeline.configurations,
                               tuner_trials=scale.pipeline.tuner_trials,
                               space=UnifiedSpaceConfig(seed=seed), seed=seed)
        outcome = search.search(model, images, labels, dataset.spec.image_shape)
        result.frequencies[network] = dict(outcome.primitive_frequency())
        result.neural_layer_counts[network] = sum(
            1 for choice in outcome.choices.values() if choice.sequence.is_neural)
        result.layer_counts[network] = len(outcome.choices)
    return result


def format_report(result: Fig5Result) -> str:
    primitives = sorted({name for counts in result.frequencies.values()
                         for name in counts})
    rows = []
    for network, counts in result.frequencies.items():
        rows.append([network, result.layer_counts[network]]
                    + [counts.get(p, 0) for p in primitives])
    table = format_table(["network", "layers"] + primitives, rows)
    return f"Figure 5: frequency of operation application\n{table}"


def to_payload(result: Fig5Result) -> dict:
    return {
        "frequencies": {network: dict(counts)
                        for network, counts in result.frequencies.items()},
        "neural_layer_counts": dict(result.neural_layer_counts),
        "layer_counts": dict(result.layer_counts),
    }


register_experiment(ExperimentSpec(
    name="fig5",
    title="Figure 5: frequency of operation application in the best networks",
    description=__doc__.strip().splitlines()[0],
    run=run, report=format_report, payload=to_payload,
    options=("networks", "platform"),
))


if __name__ == "__main__":  # pragma: no cover - manual entry point
    raise SystemExit(registry_main("fig5"))
