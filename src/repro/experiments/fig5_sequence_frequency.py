"""Figure 5: frequency of operation application.

The paper counts how often the three §7.3 case-study sequences appear in
the best-performing networks found by the unified search, per network:
ResNeXt-29 has the fewest instances (fewest layers) and DenseNet-161 the
most.  The driver runs the unified search on the three networks (on the
Intel i7 platform, as in the case studies) and reports the counts of every
chosen sequence kind.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.search import UnifiedSearch
from repro.core.unified_space import UnifiedSpaceConfig
from repro.experiments.common import (
    CIFAR_NETWORKS,
    ExperimentScale,
    cifar_dataset,
    cifar_model_builders,
    format_table,
    get_scale,
)
from repro.hardware import get_platform


@dataclass
class Fig5Result:
    frequencies: dict[str, dict[str, int]] = field(default_factory=dict)
    layer_counts: dict[str, int] = field(default_factory=dict)

    def count(self, network: str, kind: str) -> int:
        return self.frequencies.get(network, {}).get(kind, 0)

    def total(self, network: str) -> int:
        return sum(self.frequencies.get(network, {}).values())


def run(scale: str | ExperimentScale = "ci", seed: int = 0,
        networks: tuple[str, ...] = CIFAR_NETWORKS, platform: str = "cpu") -> Fig5Result:
    scale = get_scale(scale)
    builders = cifar_model_builders(scale)
    dataset = cifar_dataset(scale, seed=seed)
    images, labels = dataset.random_minibatch(scale.pipeline.fisher_batch, seed=seed)
    result = Fig5Result()
    for network in networks:
        model = builders[network]()
        search = UnifiedSearch(get_platform(platform),
                               configurations=scale.pipeline.configurations,
                               tuner_trials=scale.pipeline.tuner_trials,
                               space=UnifiedSpaceConfig(seed=seed), seed=seed)
        outcome = search.search(model, images, labels, dataset.spec.image_shape)
        result.frequencies[network] = dict(outcome.sequence_frequency())
        result.layer_counts[network] = len(outcome.choices)
    return result


def format_report(result: Fig5Result) -> str:
    kinds = sorted({kind for counts in result.frequencies.values() for kind in counts})
    rows = []
    for network, counts in result.frequencies.items():
        rows.append([network, result.layer_counts[network]] + [counts.get(k, 0) for k in kinds])
    table = format_table(["network", "layers"] + kinds, rows)
    return f"Figure 5: frequency of operation application\n{table}"


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(format_report(run()))
