"""Deployment study: one trained network, all four targets.

This is the workload the paper's introduction motivates: the same network
must be deployed on a server CPU, a server GPU, a mobile CPU and a mobile
GPU, and the right combination of neural and program transformations
differs per target.  The driver mirrors one row of Figure 4 across every
platform, reporting — per target — the TVM-baseline latency, the NAS and
unified-search speedups, the Fisher rejection rate and the sequences the
search chose, so the per-target divergence the paper argues for is
directly visible.  ``examples/deploy_across_platforms.py`` delegates here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.pipeline import ComparisonResult, compare_approaches
from repro.experiments.common import (
    CIFAR_NETWORKS,
    FIGURE4_PLATFORMS,
    ExperimentScale,
    cifar_dataset,
    cifar_model_builders,
    evaluation_engine,
    first_search_optimization,
    format_table,
    get_scale,
)
from repro.experiments.registry import (
    ExperimentSpec,
    main as registry_main,
    register_experiment,
)


@dataclass
class DeployResult:
    """Per-platform comparison for one network."""

    network: str = ""
    panels: dict[str, ComparisonResult] = field(default_factory=dict)

    def chosen_sequences(self, platform: str, top: int = 3) -> list[tuple[str, int]]:
        search = self.panels[platform].search_result
        return search.sequence_frequency().most_common(top) if search else []

    def best_platform_for_ours(self) -> str:
        """The target where the unified search wins the most over TVM."""
        return max(self.panels, key=lambda p: self.panels[p].speedups()["Ours"])

    def rows(self) -> list[tuple]:
        rows = []
        for platform, panel in self.panels.items():
            speedups = panel.speedups()
            search = panel.search_result
            top = ", ".join(f"{kind}x{count}"
                            for kind, count in self.chosen_sequences(platform))
            rows.append((platform, panel.tvm.latency_ms, speedups["NAS"],
                         speedups["Ours"],
                         search.statistics.rejection_rate if search else 0.0, top))
        return rows


def run(scale: str | ExperimentScale = "ci", seed: int = 0,
        network: str = "ResNet-34",
        platforms: tuple[str, ...] = FIGURE4_PLATFORMS) -> DeployResult:
    scale = get_scale(scale)
    builders = cifar_model_builders(scale)
    if network not in builders:
        raise KeyError(f"unknown network '{network}'; expected one of "
                       f"{sorted(CIFAR_NETWORKS)}")
    dataset = cifar_dataset(scale, seed=seed)
    result = DeployResult(network=network)
    for platform in platforms:
        result.panels[platform] = compare_approaches(
            network, builders[network], platform, scale=scale.pipeline,
            dataset=dataset, seed=seed,
            engine=evaluation_engine(platform, scale, seed=seed))
    return result


def format_report(result: DeployResult) -> str:
    table = format_table(
        ["platform", "TVM ms", "NAS x", "Ours x", "rejected", "chosen sequences"],
        [(platform, f"{tvm:.2f}", f"{nas:.2f}", f"{ours:.2f}",
          f"{100 * rejected:.0f}%", top)
         for platform, tvm, nas, ours, rejected, top in result.rows()])
    notes = ("the right transformation mix differs per target, which is the "
             "point of unifying the two search spaces\n"
             f"largest unified-search win: {result.best_platform_for_ours()}")
    return (f"Deployment study: {result.network} on every target\n"
            f"{table}\n{notes}")


def to_payload(result: DeployResult) -> dict:
    return {
        "network": result.network,
        "platforms": [
            {"platform": platform,
             "tvm_latency_ms": panel.tvm.latency_ms,
             "speedups": panel.speedups(),
             "rejection_rate": (panel.search_result.statistics.rejection_rate
                                if panel.search_result else 0.0),
             "rejections_by_primitive": dict(
                 panel.search_result.statistics.rejections_by_primitive
                 if panel.search_result else {}),
             "chosen_sequences": dict(result.chosen_sequences(platform, top=10))}
            for platform, panel in result.panels.items()
        ],
        "best_platform_for_ours": result.best_platform_for_ours(),
    }


def primary_optimization(result: DeployResult, seed: int = 0):
    """The first target's unified-search outcome as a façade result."""
    return first_search_optimization(result.panels.values(), seed=seed)


register_experiment(ExperimentSpec(
    name="deploy",
    title="Deployment study: one network across all four targets (§1)",
    description=__doc__.strip().splitlines()[0],
    run=run, report=format_report, payload=to_payload,
    primary=primary_optimization,
    options=("network", "platforms"),
))


if __name__ == "__main__":  # pragma: no cover - manual entry point
    raise SystemExit(registry_main("deploy"))
