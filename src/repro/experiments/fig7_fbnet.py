"""Figure 7: comparison against FBNet on the Intel i7.

The paper re-implements FBNet over its own candidate blocks and baseline
skeletons and finds that FBNet modestly improves over the NAS (BlockSwap)
baseline at a large training cost (~3 GPU-days per network), while the
unified approach outperforms it with no training.  The driver reproduces
the four bars per network: TVM, NAS, FBNet, Ours.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.pipeline import compare_approaches, network_latency
from repro.data import train_loader
from repro.experiments.common import (
    CIFAR_NETWORKS,
    ExperimentScale,
    cifar_dataset,
    cifar_model_builders,
    evaluation_engine,
    format_table,
    get_scale,
)
from repro.experiments.registry import (
    ExperimentSpec,
    main as registry_main,
    register_experiment,
)
from repro.hardware import get_platform
from repro.nas.fbnet import FBNetSearch
from repro.nn.blocks import iter_replaceable_convs
from repro.nn.convs import build_candidate
from repro.nn.layers import Conv2d


@dataclass
class Fig7Row:
    network: str
    tvm: float = 1.0
    nas: float = 1.0
    fbnet: float = 1.0
    ours: float = 1.0
    fbnet_epochs: int = 0


@dataclass
class Fig7Result:
    rows: list[Fig7Row] = field(default_factory=list)

    def ours_beats_fbnet(self) -> bool:
        return all(row.ours >= row.fbnet * 0.999 for row in self.rows)

    def fbnet_needs_training(self) -> bool:
        return all(row.fbnet_epochs > 0 for row in self.rows)


def _apply_fbnet_plan(model, plan: dict[str, str]):
    """Substitute the FBNet-selected candidate operators into a fresh model."""
    replaceable = {name: (owner, conv) for name, owner, conv in iter_replaceable_convs(model)
                   if isinstance(conv, Conv2d)}
    for name, kind in plan.items():
        if kind == "standard" or name not in replaceable:
            continue
        owner, conv = replaceable[name]
        candidate = build_candidate(kind, conv.in_channels, conv.out_channels,
                                    conv.kernel_size, stride=conv.stride, padding=conv.padding)
        setattr(owner, name.split(".")[-1], candidate)
    return model


def run(scale: str | ExperimentScale = "ci", seed: int = 0,
        networks: tuple[str, ...] = CIFAR_NETWORKS, platform: str = "cpu") -> Fig7Result:
    scale = get_scale(scale)
    builders = cifar_model_builders(scale)
    dataset = cifar_dataset(scale, seed=seed)
    plat = get_platform(platform)
    engine = evaluation_engine(plat, scale, seed=seed)
    result = Fig7Result()
    for network in networks:
        comparison = compare_approaches(network, builders[network], platform,
                                        scale=scale.pipeline, dataset=dataset, seed=seed,
                                        engine=engine)
        speedups = comparison.speedups()

        fbnet_model = builders[network]()
        fbnet = FBNetSearch(plat, epochs=scale.fbnet_epochs, seed=seed)
        loader = train_loader(dataset, batch_size=scale.proxy_batch, seed=seed)
        hw = dataset.spec.image_shape[1:]
        outcome = fbnet.search(fbnet_model, loader, hw)
        selected = _apply_fbnet_plan(builders[network](), outcome.plan())
        fbnet_latency = network_latency(selected, dataset.spec.image_shape, plat,
                                        engine=engine)
        result.rows.append(Fig7Row(
            network=network, tvm=1.0, nas=speedups["NAS"],
            fbnet=comparison.tvm.latency_seconds / fbnet_latency,
            ours=speedups["Ours"], fbnet_epochs=outcome.epochs_trained))
    return result


def format_report(result: Fig7Result) -> str:
    rows = [(r.network, r.tvm, r.nas, r.fbnet, r.ours) for r in result.rows]
    table = format_table(["network", "TVM x", "NAS x", "FBNet x", "Ours x"], rows)
    notes = (f"Ours >= FBNet on every network: {result.ours_beats_fbnet()}\n"
             f"FBNet required supernet training: {result.fbnet_needs_training()} "
             f"(Ours requires none)")
    return f"Figure 7: Intel i7 comparison against FBNet\n{table}\n{notes}"


def to_payload(result: Fig7Result) -> dict:
    return {
        "rows": [{"network": row.network, "TVM": row.tvm, "NAS": row.nas,
                  "FBNet": row.fbnet, "Ours": row.ours,
                  "fbnet_epochs": row.fbnet_epochs}
                 for row in result.rows],
        "ours_beats_fbnet": result.ours_beats_fbnet(),
        "fbnet_needs_training": result.fbnet_needs_training(),
    }


register_experiment(ExperimentSpec(
    name="fig7",
    title="Figure 7: comparison against FBNet on the Intel i7",
    description=__doc__.strip().splitlines()[0],
    run=run, report=format_report, payload=to_payload,
    options=("networks", "platform"),
))


if __name__ == "__main__":  # pragma: no cover - manual entry point
    raise SystemExit(registry_main("fig7"))
