"""Figure 6: layer-wise transformation sequences for ResNet-34 on the i7.

The paper takes the distinct convolution layers of ResNet-34 (the 11-layer
configuration of the original TVM paper's experiment), applies NAS grouping
(G=2) and the three case-study sequences to each, and reports the per-layer
speedup over the TVM baseline.  Some layers show no improvement because
Fisher Potential marks them too sensitive to compress.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.engine import EvaluationEngine
from repro.core.program import TransformProgram
from repro.core.sequences import paper_sequences, predefined_program
from repro.core.workloads import extract_workloads, unique_shapes
from repro.experiments.common import (
    ExperimentScale,
    cifar_dataset,
    evaluation_engine,
    format_table,
    get_scale,
)
from repro.experiments.registry import (
    ExperimentSpec,
    main as registry_main,
    register_experiment,
)
from repro.fisher import fisher_profile
from repro.hardware import get_platform
from repro.models import resnet34
from repro.poly.statement import ConvolutionShape


@dataclass
class LayerRow:
    layer_index: int
    shape: ConvolutionShape
    baseline_seconds: float
    speedups: dict[str, float] = field(default_factory=dict)
    sensitive: bool = False


@dataclass
class Fig6Result:
    rows: list[LayerRow] = field(default_factory=list)
    sequences: tuple[str, ...] = ()

    def best_speedup(self, layer_index: int) -> float:
        row = self.rows[layer_index]
        return max(row.speedups.values()) if row.speedups else 1.0

    def sensitive_layers(self) -> list[int]:
        return [row.layer_index for row in self.rows if row.sensitive]


def run(scale: str | ExperimentScale = "ci", seed: int = 0, max_layers: int = 11,
        platform: str = "cpu", engine: EvaluationEngine | None = None) -> Fig6Result:
    scale = get_scale(scale)
    plat = get_platform(platform)
    engine = engine or evaluation_engine(plat, scale, seed=seed)
    dataset = cifar_dataset(scale, seed=seed)
    model = resnet34(width_multiplier=scale.pipeline.width_multiplier)
    images, labels = dataset.random_minibatch(scale.pipeline.fisher_batch, seed=seed)
    profile = fisher_profile(model, images, labels)
    workloads = [w for w in extract_workloads(model, dataset.spec.image_shape)
                 if w.kernel_size == 3 and w.name in profile.layers]

    # Distinct layer configurations, mirroring the 11-layer TVM experiment.
    seen: dict[ConvolutionShape, str] = {}
    for workload in workloads:
        seen.setdefault(workload.shape, workload.name)
    distinct = list(seen.items())[:max_layers]

    # Layers in the top Fisher quartile are "sensitive": the paper reports
    # that 4 of the 11 layers receive no transformation for this reason.
    scores = sorted(profile.score_of(name) for _shape, name in distinct)
    cutoff = scores[int(len(scores) * 0.6)] if scores else 0.0

    sequences: dict[str, TransformProgram] = {
        "NAS (G=2)": predefined_program("group", group=2)}
    sequences.update({f"Seq.{i}": seq for i, seq in
                      enumerate(paper_sequences().values(), start=1)})

    result = Fig6Result(sequences=tuple(sequences))
    standard = predefined_program("standard")
    for index, (shape, name) in enumerate(distinct):
        baseline = engine.tuned_latency(shape, standard)
        row = LayerRow(layer_index=index, shape=shape, baseline_seconds=baseline,
                       sensitive=profile.score_of(name) >= cutoff)
        for label, sequence in sequences.items():
            if row.sensitive or not sequence.applicable(shape):
                row.speedups[label] = 1.0
                continue
            seconds = engine.tuned_latency(shape, sequence)
            row.speedups[label] = baseline / max(seconds, 1e-12)
        result.rows.append(row)
    return result


def format_report(result: Fig6Result) -> str:
    headers = ["layer", "C_out x C_in x HxW", "sensitive"] + list(result.sequences)
    rows = []
    for row in result.rows:
        shape = row.shape
        rows.append([row.layer_index, f"{shape.c_out}x{shape.c_in}x{shape.h_out}x{shape.w_out}",
                     "yes" if row.sensitive else "no"]
                    + [row.speedups.get(label, 1.0) for label in result.sequences])
    table = format_table(headers, rows)
    return "Figure 6: layer-wise speedup over TVM (ResNet-34, Intel i7)\n" + table


def to_payload(result: Fig6Result) -> dict:
    import dataclasses

    return {
        "sequences": list(result.sequences),
        "rows": [{"layer_index": row.layer_index,
                  "shape": dataclasses.asdict(row.shape),
                  "baseline_seconds": row.baseline_seconds,
                  "speedups": dict(row.speedups),
                  "sensitive": row.sensitive}
                 for row in result.rows],
        "sensitive_layers": result.sensitive_layers(),
    }


register_experiment(ExperimentSpec(
    name="fig6",
    title="Figure 6: layer-wise transformation sequences (ResNet-34 on i7)",
    description=__doc__.strip().splitlines()[0],
    run=run, report=format_report, payload=to_payload,
    options=("platform", "max_layers"),
))


if __name__ == "__main__":  # pragma: no cover - manual entry point
    raise SystemExit(registry_main("fig6"))
