"""Table 1: the autotuning primitives of the unified space.

The experiment regenerates the table and verifies, by construction, that
every primitive is applicable to a representative convolution loop nest.
Each primitive is expressed as a one-or-two-step
:class:`~repro.core.program.TransformProgram` and compiled through the
IR's single lowering path — the same path the engine, search and drivers
use — then lowered and priced by the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.program import TransformProgram, step
from repro.core.unified_space import TABLE1_PRIMITIVES, primitive_catalogue
from repro.errors import TransformError
from repro.experiments.common import format_table
from repro.experiments.registry import (
    ExperimentSpec,
    main as registry_main,
    register_experiment,
)
from repro.hardware import get_platform
from repro.poly.statement import ConvolutionShape
from repro.tenir import lower
from repro.hardware.cost_model import estimate_latency


@dataclass
class Table1Result:
    rows: list[tuple[str, str, str, bool]] = field(default_factory=list)

    @property
    def all_applicable(self) -> bool:
        return all(applicable for *_rest, applicable in self.rows)


#: One representative program per Table-1 row.
_EXERCISES: dict[str, tuple] = {
    "reorder": (step("reorder", front=("ci", "co")),),
    "tile": (step("tile", iterator="ow", factor=4),),
    "unroll": (step("unroll", iterator="kw", factor=3),),
    "prefetch": (step("prefetch", iterator="ow"),),
    "split": (step("split", iterator="ci", factor=4),),
    "fuse": (step("split", iterator="ci", factor=4),
             step("fuse", first="ci_o", second="ci_i")),
    "bottleneck": (step("bottleneck", iterator="co", factor=2),),
    "group": (step("group", factor=2),),
    "blockIdx": (step("bind", iterator="co", tag="blockIdx.x"),),
    "threadIdx": (step("bind", iterator="ow", tag="threadIdx.x"),),
    "vthread": (step("bind", iterator="oh", tag="vthread"),),
}


def _exercise(primitive: str, shape: ConvolutionShape) -> bool:
    """Compile a one-primitive program and lower the result."""
    steps = _EXERCISES.get(primitive)
    if steps is None:
        return False
    program = TransformProgram(name=f"table1_{primitive}", steps=steps)
    try:
        stages = program.compile(shape)
    except TransformError:
        return False
    total_macs = 0
    for stage in stages:
        nest = lower(stage)
        estimate_latency(nest, get_platform("cpu"))
        total_macs += nest.macs
    return total_macs > 0


def run(scale: str = "ci", seed: int = 0) -> Table1Result:
    """Regenerate Table 1 and check each primitive is exercisable."""
    del scale, seed  # the table is scale-independent
    shape = ConvolutionShape(c_out=16, c_in=16, h_out=8, w_out=8, k_h=3, k_w=3)
    result = Table1Result()
    for category, primitive, description in primitive_catalogue():
        result.rows.append((category, primitive, description, _exercise(primitive, shape)))
    return result


def format_report(result: Table1Result) -> str:
    header = "Table 1: autotuning primitives available to the unified optimizer"
    table = format_table(
        ["category", "primitive", "description", "applicable"],
        [(c, p, d, "yes" if ok else "NO") for c, p, d, ok in result.rows])
    return f"{header}\n{table}"


def to_payload(result: Table1Result) -> dict:
    return {
        "rows": [{"category": category, "primitive": primitive,
                  "description": description, "applicable": applicable}
                 for category, primitive, description, applicable in result.rows],
        "all_applicable": result.all_applicable,
    }


register_experiment(ExperimentSpec(
    name="table1",
    title="Table 1: the autotuning primitives of the unified space",
    description=__doc__.strip().splitlines()[0],
    run=run, report=format_report, payload=to_payload,
))


if __name__ == "__main__":  # pragma: no cover - manual entry point
    raise SystemExit(registry_main("table1"))
