"""Table 1: the autotuning primitives of the unified space.

The experiment regenerates the table and verifies, by construction, that
every primitive is applicable to a representative convolution loop nest
(program and neural primitives through the scheduling layer, GPU mapping
primitives through ``bind``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.unified_space import TABLE1_PRIMITIVES, primitive_catalogue
from repro.experiments.common import format_table
from repro.hardware import get_platform
from repro.poly.statement import ConvolutionShape
from repro.tenir import conv2d_compute, create_schedule, lower
from repro.hardware.cost_model import estimate_latency


@dataclass
class Table1Result:
    rows: list[tuple[str, str, str, bool]] = field(default_factory=list)

    @property
    def all_applicable(self) -> bool:
        return all(applicable for *_rest, applicable in self.rows)


def _exercise(primitive: str, shape: ConvolutionShape) -> bool:
    """Apply one primitive to a fresh conv schedule and lower the result."""
    stage = create_schedule(conv2d_compute(shape))
    if primitive == "reorder":
        stage.reorder("ci", "co")
    elif primitive == "tile":
        stage.tile("ow", 4)
    elif primitive == "unroll":
        stage.unroll("kw", 3)
    elif primitive == "prefetch":
        stage.prefetch("ow")
    elif primitive == "split":
        stage.split("ci", 4)
    elif primitive == "fuse":
        stage.split("ci", 4)
        stage.fuse("ci_o", "ci_i")
    elif primitive == "bottleneck":
        stage.bottleneck("co", 2)
    elif primitive == "group":
        stage.group(2)
    elif primitive == "blockIdx":
        stage.bind("co", "blockIdx.x")
    elif primitive == "threadIdx":
        stage.bind("ow", "threadIdx.x")
    elif primitive == "vthread":
        stage.bind("oh", "vthread")
    else:
        return False
    nest = lower(stage)
    estimate_latency(nest, get_platform("cpu"))
    return nest.macs > 0


def run(scale: str = "ci", seed: int = 0) -> Table1Result:
    """Regenerate Table 1 and check each primitive is exercisable."""
    del scale, seed  # the table is scale-independent
    shape = ConvolutionShape(c_out=16, c_in=16, h_out=8, w_out=8, k_h=3, k_w=3)
    result = Table1Result()
    for category, primitive, description in primitive_catalogue():
        result.rows.append((category, primitive, description, _exercise(primitive, shape)))
    return result


def format_report(result: Table1Result) -> str:
    header = "Table 1: autotuning primitives available to the unified optimizer"
    table = format_table(
        ["category", "primitive", "description", "applicable"],
        [(c, p, d, "yes" if ok else "NO") for c, p, d, ok in result.rows])
    return f"{header}\n{table}"


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(format_report(run()))
