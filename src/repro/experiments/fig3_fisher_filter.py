"""Figure 3: Fisher Potential as a rejection filter over NAS-Bench-201 cells.

The paper plots, for the 15625 cells of the NAS-Bench-201 space, final
CIFAR-10 top-1 error against Fisher Potential at initialisation and
observes that low-potential architectures cluster at high error, so a
potential threshold rejects poor architectures without training.

The driver samples cells from the space, computes each cell's potential on
one random minibatch and its final error from a proxy training run, then
summarises the scatter: the rank correlation between potential and error,
and the mean error of the low-potential half vs the high-potential half.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.common import ExperimentScale, cifar_dataset, format_table, get_scale
from repro.experiments.registry import (
    ExperimentSpec,
    main as registry_main,
    register_experiment,
)
from repro.nas.space import CellEvaluation, evaluate_cell, sample_cells, space_size


@dataclass
class Fig3Result:
    evaluations: list[CellEvaluation] = field(default_factory=list)
    space_size: int = 0
    rank_correlation: float = 0.0
    low_potential_mean_error: float = 0.0
    high_potential_mean_error: float = 0.0

    @property
    def filter_separates(self) -> bool:
        """True when low-potential cells have worse (higher) mean error."""
        return self.low_potential_mean_error >= self.high_potential_mean_error

    def series(self) -> list[tuple[float, float]]:
        """(fisher potential, final error) points — the Figure 3 scatter."""
        return [(e.fisher_potential, e.final_error) for e in self.evaluations]


def _spearman(x: np.ndarray, y: np.ndarray) -> float:
    """Spearman rank correlation without SciPy (kept dependency-light)."""
    rx = np.argsort(np.argsort(x)).astype(float)
    ry = np.argsort(np.argsort(y)).astype(float)
    rx -= rx.mean()
    ry -= ry.mean()
    denom = np.sqrt((rx ** 2).sum() * (ry ** 2).sum())
    return float((rx * ry).sum() / denom) if denom > 0 else 0.0


def run(scale: str | ExperimentScale = "ci", seed: int = 0) -> Fig3Result:
    scale = get_scale(scale)
    dataset = cifar_dataset(scale, seed=seed)
    cells = sample_cells(scale.cell_samples, seed=seed)
    result = Fig3Result(space_size=space_size())
    for index, spec in enumerate(cells):
        result.evaluations.append(evaluate_cell(
            spec, dataset, epochs=scale.cell_epochs, batch_size=scale.proxy_batch,
            seed=seed + index))

    potentials = np.array([e.fisher_potential for e in result.evaluations])
    errors = np.array([e.final_error for e in result.evaluations])
    result.rank_correlation = _spearman(potentials, -errors)
    median = np.median(potentials)
    low = errors[potentials <= median]
    high = errors[potentials > median]
    result.low_potential_mean_error = float(low.mean()) if low.size else 0.0
    result.high_potential_mean_error = float(high.mean()) if high.size else 0.0
    return result


def format_report(result: Fig3Result) -> str:
    rows = [(f"{e.spec.describe()[:40]}", e.fisher_potential, e.final_error, e.parameters)
            for e in result.evaluations]
    table = format_table(["cell", "fisher potential", "final error %", "params"], rows)
    summary = (
        f"cells sampled: {len(result.evaluations)} of {result.space_size}\n"
        f"rank correlation (potential vs accuracy): {result.rank_correlation:.3f}\n"
        f"mean error of low-potential half:  {result.low_potential_mean_error:.2f}%\n"
        f"mean error of high-potential half: {result.high_potential_mean_error:.2f}%\n"
        f"rejection filter separates poor architectures: {result.filter_separates}"
    )
    return f"Figure 3: Fisher Potential rejection filter\n{table}\n\n{summary}"


def to_payload(result: Fig3Result) -> dict:
    return {
        "space_size": result.space_size,
        "rank_correlation": result.rank_correlation,
        "low_potential_mean_error": result.low_potential_mean_error,
        "high_potential_mean_error": result.high_potential_mean_error,
        "filter_separates": result.filter_separates,
        "cells": [{"cell": e.spec.describe(), "fisher_potential": e.fisher_potential,
                   "final_error": e.final_error, "parameters": e.parameters}
                  for e in result.evaluations],
    }


register_experiment(ExperimentSpec(
    name="fig3",
    title="Figure 3: Fisher Potential as a rejection filter over NAS cells",
    description=__doc__.strip().splitlines()[0],
    run=run, report=format_report, payload=to_payload,
))


if __name__ == "__main__":  # pragma: no cover - manual entry point
    raise SystemExit(registry_main("fig3"))
