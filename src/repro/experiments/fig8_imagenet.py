"""Figure 8: ImageNet accuracy vs inference time (original vs Ours).

The paper applies the unified method to ResNet-18/34 and DenseNet-161/169/
201 trained on ImageNet, and plots accuracy against (log) inference time on
the Intel i7: every optimised network sits far to the left (much faster) at
essentially the same accuracy (within 2%).

The driver reproduces the series with the ImageNet-shaped synthetic
dataset: for every model it reports original and optimised inference time
(auto-tuned cost-model latency) and original vs optimised proxy accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.search import UnifiedSearch
from repro.core.unified_space import UnifiedSpaceConfig
from repro.core.pipeline import network_latency
from repro.data import test_loader, train_loader
from repro.experiments.common import (
    ExperimentScale,
    evaluation_engine,
    format_table,
    get_scale,
    imagenet_dataset,
    imagenet_model_builders,
)
from repro.experiments.registry import (
    ExperimentSpec,
    main as registry_main,
    register_experiment,
)
from repro.hardware import get_platform
from repro.nn.trainer import proxy_fit


@dataclass
class Fig8Point:
    model: str
    original_latency_ms: float
    optimized_latency_ms: float
    original_accuracy: float
    optimized_accuracy: float
    original_parameters: int
    optimized_parameters: int

    @property
    def speedup(self) -> float:
        return self.original_latency_ms / max(self.optimized_latency_ms, 1e-9)

    @property
    def accuracy_drop(self) -> float:
        return self.original_accuracy - self.optimized_accuracy


@dataclass
class Fig8Result:
    points: list[Fig8Point] = field(default_factory=list)

    def all_faster(self) -> bool:
        return all(point.speedup > 1.0 for point in self.points)

    def max_accuracy_drop(self) -> float:
        return max((point.accuracy_drop for point in self.points), default=0.0)


def run(scale: str | ExperimentScale = "ci", seed: int = 0, platform: str = "cpu",
        models: tuple[str, ...] | None = None) -> Fig8Result:
    scale = get_scale(scale)
    builders = imagenet_model_builders(scale)
    if models is not None:
        builders = {name: builders[name] for name in models}
    dataset = imagenet_dataset(scale, seed=seed)
    plat = get_platform(platform)
    # One engine for the whole model family: the ResNets and DenseNets share
    # many convolution shapes, so the later models tune almost nothing new.
    engine = evaluation_engine(plat, scale, seed=seed)
    images, labels = dataset.random_minibatch(scale.pipeline.fisher_batch, seed=seed)
    loader = train_loader(dataset, batch_size=scale.proxy_batch, seed=seed)
    held_out = test_loader(dataset)

    result = Fig8Result()
    for name, builder in builders.items():
        original = builder()
        original_latency = network_latency(original, dataset.spec.image_shape, plat,
                                           engine=engine)
        original_fit = proxy_fit(builder(), loader, held_out, epochs=scale.proxy_epochs)

        search_model = builder()
        search = UnifiedSearch(plat, configurations=scale.pipeline.configurations,
                               space=UnifiedSpaceConfig(seed=seed), seed=seed,
                               engine=engine)
        outcome = search.search(search_model, images, labels, dataset.spec.image_shape)
        optimized = search.materialize(builder(), outcome, seed=seed)
        # Latency accounting mirrors Figure 4: the compiled network consists of
        # the transformed loop nests the search selected, so its latency is the
        # original's with the searched layers' baseline cost swapped for the
        # optimised cost.  The materialised module is used for accuracy and
        # parameter counting only.
        optimized_latency = (original_latency - outcome.baseline_latency_seconds
                             + outcome.optimized_latency_seconds)
        optimized_fit = proxy_fit(optimized, loader, held_out, epochs=scale.proxy_epochs)

        result.points.append(Fig8Point(
            model=name,
            original_latency_ms=original_latency * 1e3,
            optimized_latency_ms=optimized_latency * 1e3,
            original_accuracy=100.0 * original_fit.final_accuracy,
            optimized_accuracy=100.0 * optimized_fit.final_accuracy,
            original_parameters=builder().num_parameters(),
            optimized_parameters=optimized.num_parameters(),
        ))
    return result


def format_report(result: Fig8Result) -> str:
    rows = [(p.model, p.original_latency_ms, p.optimized_latency_ms, p.speedup,
             p.original_accuracy, p.optimized_accuracy) for p in result.points]
    table = format_table(
        ["model", "orig ms", "ours ms", "speedup", "orig acc %", "ours acc %"], rows)
    notes = (f"every optimised model is faster: {result.all_faster()}\n"
             f"largest accuracy drop: {result.max_accuracy_drop():.2f} points")
    return f"Figure 8: ImageNet accuracy vs inference time (Intel i7)\n{table}\n{notes}"


def to_payload(result: Fig8Result) -> dict:
    return {
        "points": [{"model": p.model,
                    "original_latency_ms": p.original_latency_ms,
                    "optimized_latency_ms": p.optimized_latency_ms,
                    "speedup": p.speedup,
                    "original_accuracy": p.original_accuracy,
                    "optimized_accuracy": p.optimized_accuracy,
                    "original_parameters": p.original_parameters,
                    "optimized_parameters": p.optimized_parameters}
                   for p in result.points],
        "all_faster": result.all_faster(),
        "max_accuracy_drop": result.max_accuracy_drop(),
    }


register_experiment(ExperimentSpec(
    name="fig8",
    title="Figure 8: ImageNet accuracy vs inference time (original vs Ours)",
    description=__doc__.strip().splitlines()[0],
    run=run, report=format_report, payload=to_payload,
    options=("platform", "models"),
))


if __name__ == "__main__":  # pragma: no cover - manual entry point
    raise SystemExit(registry_main("fig8"))
