"""Optimizers and learning-rate schedules.

The paper trains its CIFAR-10 models with SGD (momentum), learning rate 0.1
decayed by 10x at fixed epochs; :class:`SGD` + :class:`MultiStepLR`
reproduce that recipe.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.module import Parameter


class SGD:
    """Stochastic gradient descent with momentum and weight decay."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 0.1,
                 momentum: float = 0.9, weight_decay: float = 0.0):
        self.parameters = list(parameters)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            velocity *= self.momentum
            velocity += grad
            param.data = param.data - self.lr * velocity


class MultiStepLR:
    """Decay the optimizer learning rate by ``gamma`` at given epoch milestones."""

    def __init__(self, optimizer: SGD, milestones: list[int], gamma: float = 0.1):
        self.optimizer = optimizer
        self.milestones = sorted(milestones)
        self.gamma = gamma
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        """Advance one epoch and update the learning rate."""
        self.epoch += 1
        passed = sum(1 for milestone in self.milestones if self.epoch >= milestone)
        self.optimizer.lr = self.base_lr * (self.gamma ** passed)

    @property
    def current_lr(self) -> float:
        return self.optimizer.lr


class CosineLR:
    """Cosine-annealed learning rate, used by the FBNet-like baseline."""

    def __init__(self, optimizer: SGD, total_epochs: int, min_lr: float = 0.0):
        self.optimizer = optimizer
        self.total_epochs = max(total_epochs, 1)
        self.min_lr = min_lr
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        self.epoch += 1
        progress = min(self.epoch / self.total_epochs, 1.0)
        cosine = 0.5 * (1.0 + np.cos(np.pi * progress))
        self.optimizer.lr = self.min_lr + (self.base_lr - self.min_lr) * cosine

    @property
    def current_lr(self) -> float:
        return self.optimizer.lr
