"""Module system: parameter containers with train/eval modes.

The design mirrors the familiar framework idiom (``Module`` owns parameters
and child modules, ``parameters()`` walks the tree) so the model zoo reads
naturally, while remaining small enough to audit.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.tensor.tensor import Tensor


class Parameter(Tensor):
    """A tensor that is registered as a learnable parameter of a module."""

    def __init__(self, data, name: str | None = None):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural-network layers and models."""

    def __init__(self) -> None:
        self._parameters: dict[str, Parameter] = {}
        self._modules: dict[str, "Module"] = {}
        self._buffers: dict[str, np.ndarray] = {}
        self.training = True

    # ------------------------------------------------------------------
    # Registration via attribute assignment
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-learnable persistent array (e.g. BN running stats)."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Tree traversal
    # ------------------------------------------------------------------
    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield prefix, self
        for name, module in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from module.named_modules(child_prefix)

    def modules(self) -> Iterator["Module"]:
        for _, module in self.named_modules():
            yield module

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}.{name}" if prefix else name), param
        for name, module in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from module.named_parameters(child_prefix)

    def parameters(self) -> Iterator[Parameter]:
        for _, param in self.named_parameters():
            yield param

    def num_parameters(self) -> int:
        """Total number of learnable scalar parameters."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Modes and gradient management
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # State serialisation (in-memory; used for model interpolation/copies)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        state: dict[str, np.ndarray] = {}
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for prefix, module in self.named_modules():
            for buf_name, buf in module._buffers.items():
                key = f"{prefix}.{buf_name}" if prefix else buf_name
                state[key] = buf.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        for name, param in self.named_parameters():
            if name in state:
                param.data = state[name].copy()
        for prefix, module in self.named_modules():
            for buf_name, buf in module._buffers.items():
                key = f"{prefix}.{buf_name}" if prefix else buf_name
                if key in state:
                    buf[...] = state[key]

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs) -> Tensor:
        return self.forward(*args, **kwargs)


class Sequential(Module):
    """Run child modules in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)
        for index, layer in enumerate(layers):
            setattr(self, f"layer{index}", layer)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __iter__(self):
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]


class ModuleList(Module):
    """A list of modules whose parameters are all registered."""

    def __init__(self, modules: list[Module] | None = None):
        super().__init__()
        self._items: list[Module] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> None:
        index = len(self._items)
        self._items.append(module)
        setattr(self, f"item{index}", module)

    def __iter__(self):
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]

    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - containers only
        raise NotImplementedError("ModuleList is a container and has no forward()")
