"""Composite blocks used by the model zoo.

Each block exposes its *modifiable convolutions* (the ones NAS and the
unified search are allowed to replace) through ``replaceable_convs()``,
which returns ``(attribute name, module)`` pairs.  The BlockSwap baseline
and the unified optimizer both work against this interface.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import BatchNorm2d, Conv2d, Identity, ReLU
from repro.nn.module import Module, Sequential
from repro.tensor.tensor import Tensor, concat
from repro.utils import make_rng


class ConvBNReLU(Module):
    """Convolution -> batch norm -> ReLU, the basic unit of every network."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int, *,
                 stride: int = 1, padding: int | None = None,
                 rng: np.random.Generator | None = None):
        super().__init__()
        if padding is None:
            padding = kernel_size // 2
        self.conv = Conv2d(in_channels, out_channels, kernel_size, stride=stride,
                           padding=padding, rng=rng)
        self.bn = BatchNorm2d(out_channels)

    def forward(self, x: Tensor) -> Tensor:
        return self.bn(self.conv(x)).relu()

    def replaceable_convs(self) -> list[tuple[str, Module]]:
        return [("conv", self.conv)]


class BasicResidualBlock(Module):
    """ResNet basic block: two 3x3 convolutions with an identity shortcut."""

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or make_rng()
        self.conv1 = Conv2d(in_channels, out_channels, 3, stride=stride, padding=1, rng=rng)
        self.bn1 = BatchNorm2d(out_channels)
        self.conv2 = Conv2d(out_channels, out_channels, 3, stride=1, padding=1, rng=rng)
        self.bn2 = BatchNorm2d(out_channels)
        if stride != 1 or in_channels != out_channels:
            self.shortcut: Module = Sequential(
                Conv2d(in_channels, out_channels, 1, stride=stride, rng=rng),
                BatchNorm2d(out_channels),
            )
        else:
            self.shortcut = Identity()

    def forward(self, x: Tensor) -> Tensor:
        out = self.bn1(self.conv1(x)).relu()
        out = self.bn2(self.conv2(out))
        return (out + self.shortcut(x)).relu()

    def replaceable_convs(self) -> list[tuple[str, Module]]:
        return [("conv1", self.conv1), ("conv2", self.conv2)]


class ResNeXtBlock(Module):
    """ResNeXt block: 1x1 reduce, grouped 3x3, 1x1 expand, with a shortcut.

    ``cardinality`` is the number of groups and ``base_width`` the per-group
    width, following ResNeXt-29 (2x64d means cardinality 2, base width 64).
    """

    def __init__(self, in_channels: int, out_channels: int, *, cardinality: int = 2,
                 base_width: int = 64, widen_factor: int = 4, stride: int = 1,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or make_rng()
        width_ratio = out_channels / (widen_factor * 64.0)
        inner = max(cardinality, cardinality * int(base_width * width_ratio))
        self.conv_reduce = Conv2d(in_channels, inner, 1, rng=rng)
        self.bn_reduce = BatchNorm2d(inner)
        self.conv_grouped = Conv2d(inner, inner, 3, stride=stride, padding=1,
                                   groups=cardinality, rng=rng)
        self.bn_grouped = BatchNorm2d(inner)
        self.conv_expand = Conv2d(inner, out_channels, 1, rng=rng)
        self.bn_expand = BatchNorm2d(out_channels)
        if stride != 1 or in_channels != out_channels:
            self.shortcut: Module = Sequential(
                Conv2d(in_channels, out_channels, 1, stride=stride, rng=rng),
                BatchNorm2d(out_channels),
            )
        else:
            self.shortcut = Identity()

    def forward(self, x: Tensor) -> Tensor:
        out = self.bn_reduce(self.conv_reduce(x)).relu()
        out = self.bn_grouped(self.conv_grouped(out)).relu()
        out = self.bn_expand(self.conv_expand(out))
        return (out + self.shortcut(x)).relu()

    def replaceable_convs(self) -> list[tuple[str, Module]]:
        return [("conv_grouped", self.conv_grouped)]


class DenseLayer(Module):
    """DenseNet layer: BN -> ReLU -> 1x1 conv -> BN -> ReLU -> 3x3 conv.

    The output (``growth_rate`` channels) is concatenated onto the input by
    the enclosing :class:`DenseBlock`.
    """

    def __init__(self, in_channels: int, growth_rate: int, *, bn_size: int = 4,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or make_rng()
        inner = bn_size * growth_rate
        self.bn1 = BatchNorm2d(in_channels)
        self.conv1 = Conv2d(in_channels, inner, 1, rng=rng)
        self.bn2 = BatchNorm2d(inner)
        self.conv2 = Conv2d(inner, growth_rate, 3, padding=1, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        out = self.conv1(self.bn1(x).relu())
        out = self.conv2(self.bn2(out).relu())
        return out

    def replaceable_convs(self) -> list[tuple[str, Module]]:
        return [("conv1", self.conv1), ("conv2", self.conv2)]


class DenseBlock(Module):
    """A stack of dense layers with cumulative channel concatenation."""

    def __init__(self, num_layers: int, in_channels: int, growth_rate: int, *,
                 bn_size: int = 4, rng: np.random.Generator | None = None):
        super().__init__()
        self.layers = []
        channels = in_channels
        for index in range(num_layers):
            layer = DenseLayer(channels, growth_rate, bn_size=bn_size, rng=rng)
            self.layers.append(layer)
            setattr(self, f"denselayer{index}", layer)
            channels += growth_rate
        self.out_channels = channels

    def forward(self, x: Tensor) -> Tensor:
        features = x
        for layer in self.layers:
            new = layer(features)
            features = concat([features, new], axis=1)
        return features

    def replaceable_convs(self) -> list[tuple[str, Module]]:
        pairs = []
        for index, layer in enumerate(self.layers):
            for name, conv in layer.replaceable_convs():
                pairs.append((f"denselayer{index}.{name}", conv))
        return pairs


class TransitionLayer(Module):
    """DenseNet transition: BN -> ReLU -> 1x1 conv -> 2x2 average pool."""

    def __init__(self, in_channels: int, out_channels: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.bn = BatchNorm2d(in_channels)
        self.conv = Conv2d(in_channels, out_channels, 1, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        from repro.tensor import ops

        out = self.conv(self.bn(x).relu())
        return ops.avg_pool2d(out, 2, 2)

    def replaceable_convs(self) -> list[tuple[str, Module]]:
        return [("conv", self.conv)]


def iter_replaceable_convs(model: Module) -> list[tuple[str, Module, Module]]:
    """Walk a model and collect every replaceable convolution.

    Returns ``(qualified name, owning block, conv module)`` triples.  The
    owning block is returned so callers can substitute the attribute.
    """
    found: list[tuple[str, Module, Module]] = []
    for prefix, module in model.named_modules():
        collector = getattr(module, "replaceable_convs", None)
        if collector is None or isinstance(module, (DenseBlock,)):
            # DenseBlock delegates to its DenseLayers, which are visited on
            # their own; skipping it avoids double-counting.
            continue
        for name, conv in collector():
            qualified = f"{prefix}.{name}" if prefix else name
            found.append((qualified, module, conv))
    return found


def replace_conv(owner: Module, attribute: str, replacement: Module) -> None:
    """Swap a convolution attribute on its owning block."""
    setattr(owner, attribute, replacement)
