"""Standard neural-network layers (conv, linear, batch norm, pooling).

``Conv2d`` is the layer the paper's transformations target: every NAS
operation (grouping, bottlenecking, depthwise, spatial bottlenecking) is a
re-parameterisation of this layer, and Fisher Potential is computed from
its recorded output activations and their gradients.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.nn.module import Module, Parameter
from repro.tensor import init, ops
from repro.tensor.tensor import Tensor
from repro.utils import make_rng


class Identity(Module):
    """Pass-through layer (one of the NAS-Bench-201 edge operations)."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Zeroize(Module):
    """Outputs zeros of the same shape (the NAS-Bench-201 ``zeroize`` edge)."""

    def forward(self, x: Tensor) -> Tensor:
        return x * Tensor(np.zeros((1,)))


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Flatten(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)


class Linear(Module):
    """Affine layer ``y = x W^T + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or make_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_normal((out_features, in_features), rng=rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return ops.linear(x, self.weight, self.bias)


class Conv2d(Module):
    """2-D convolution with optional grouping.

    ``record_activations`` keeps a reference to the layer's output tensor so
    that Fisher Potential (activation x gradient, per channel) can be read
    after a backward pass.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int, *,
                 stride: int = 1, padding: int = 0, groups: int = 1, bias: bool = False,
                 rng: np.random.Generator | None = None):
        super().__init__()
        if in_channels % groups != 0 or out_channels % groups != 0:
            raise ModelError(
                f"Conv2d channels ({in_channels}->{out_channels}) must be divisible by "
                f"groups={groups}"
            )
        rng = rng or make_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.groups = groups
        weight_shape = (out_channels, in_channels // groups, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_normal(weight_shape, rng=rng))
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None
        self.record_activations = False
        self.last_input: Tensor | None = None
        self.last_output: Tensor | None = None

    def forward(self, x: Tensor) -> Tensor:
        out = ops.conv2d(x, self.weight, self.bias, stride=self.stride,
                         padding=self.padding, groups=self.groups)
        if self.record_activations:
            self.last_input = x
            self.last_output = out
        return out

    # Used by the compiler bridge and cost model to describe this layer as a
    # tensor computation, independent of the autograd substrate.
    def workload(self, input_hw: tuple[int, int]) -> dict[str, int]:
        """Describe this convolution's loop-nest extents for a given input size."""
        h, w = input_hw
        oh = ops.conv_output_size(h, self.kernel_size, self.stride, self.padding)
        ow = ops.conv_output_size(w, self.kernel_size, self.stride, self.padding)
        return {
            "c_out": self.out_channels,
            "c_in": self.in_channels,
            "h_out": oh,
            "w_out": ow,
            "k_h": self.kernel_size,
            "k_w": self.kernel_size,
            "groups": self.groups,
            "stride": self.stride,
        }

    def flops(self, input_hw: tuple[int, int]) -> int:
        """Multiply-accumulate count for one input image."""
        spec = self.workload(input_hw)
        per_output = (spec["c_in"] // spec["groups"]) * spec["k_h"] * spec["k_w"]
        outputs = spec["c_out"] * spec["h_out"] * spec["w_out"]
        return 2 * per_output * outputs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, k={self.kernel_size}, "
            f"s={self.stride}, p={self.padding}, g={self.groups})"
        )


class BatchNorm2d(Module):
    """Batch normalisation over channels with running statistics."""

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(init.ones((num_features,)))
        self.beta = Parameter(init.zeros((num_features,)))
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        return ops.batch_norm2d(
            x, self.gamma, self.beta, self.running_mean, self.running_var,
            training=self.training, momentum=self.momentum, eps=self.eps,
        )


class MaxPool2d(Module):
    def __init__(self, kernel_size: int, stride: int | None = None, padding: int = 0):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size
        self.padding = padding

    def forward(self, x: Tensor) -> Tensor:
        return ops.max_pool2d(x, self.kernel_size, self.stride, self.padding)


class AvgPool2d(Module):
    def __init__(self, kernel_size: int, stride: int | None = None, padding: int = 0):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size
        self.padding = padding

    def forward(self, x: Tensor) -> Tensor:
        return ops.avg_pool2d(x, self.kernel_size, self.stride, self.padding)


class GlobalAvgPool2d(Module):
    def forward(self, x: Tensor) -> Tensor:
        return ops.global_avg_pool2d(x)
