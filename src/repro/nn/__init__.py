"""Neural-network library built on the autograd tensor engine."""

from repro.nn.module import Module, ModuleList, Parameter, Sequential
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
    Zeroize,
)
from repro.nn.convs import (
    CANDIDATE_KINDS,
    BottleneckConv2d,
    ConvTransformConfig,
    DepthwiseSeparableConv2d,
    DerivedConv2d,
    GroupedConv2d,
    InputBottleneckConv2d,
    SpatialBottleneckConv2d,
    build_candidate,
)
from repro.nn.blocks import (
    BasicResidualBlock,
    ConvBNReLU,
    DenseBlock,
    DenseLayer,
    ResNeXtBlock,
    TransitionLayer,
    iter_replaceable_convs,
    replace_conv,
)
from repro.nn.optim import SGD, CosineLR, MultiStepLR
from repro.nn.metrics import AverageMeter, top1_error, top_k_accuracy
from repro.nn.trainer import Trainer, TrainingConfig, TrainingResult, proxy_fit

__all__ = [
    "Module", "ModuleList", "Parameter", "Sequential",
    "AvgPool2d", "BatchNorm2d", "Conv2d", "Flatten", "GlobalAvgPool2d", "Identity",
    "Linear", "MaxPool2d", "ReLU", "Zeroize",
    "CANDIDATE_KINDS", "BottleneckConv2d", "ConvTransformConfig",
    "DepthwiseSeparableConv2d", "DerivedConv2d", "GroupedConv2d",
    "InputBottleneckConv2d", "SpatialBottleneckConv2d", "build_candidate",
    "BasicResidualBlock", "ConvBNReLU", "DenseBlock", "DenseLayer", "ResNeXtBlock",
    "TransitionLayer", "iter_replaceable_convs", "replace_conv",
    "SGD", "CosineLR", "MultiStepLR",
    "AverageMeter", "top1_error", "top_k_accuracy",
    "Trainer", "TrainingConfig", "TrainingResult", "proxy_fit",
]
