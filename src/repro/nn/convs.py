"""Convolution variants used by NAS and by the unified transformation space.

Each variant corresponds to one of the operators discussed in the paper:

* :class:`GroupedConv2d`        — grouping transformation (Table 1, ``group``)
* :class:`BottleneckConv2d`     — output-channel bottlenecking (``bottleneck``)
* :class:`InputBottleneckConv2d`— input-channel bottlenecking (the novel
  operator derived in §2.3 by interchanging then re-applying bottlenecking)
* :class:`DepthwiseSeparableConv2d` — depthwise special case of grouping
* :class:`SpatialBottleneckConv2d`  — the §5.3 example (bottleneck on H and W)
* :class:`DerivedConv2d`        — a convolution described by an arbitrary
  :class:`ConvTransformConfig`, i.e. the operator produced by a sequence of
  transformations from the unified search space.

All variants preserve the (C_out, H, W) interface of the standard
convolution they replace so they can be dropped into an existing network
without touching its surrounding layers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ModelError
from repro.nn.layers import Conv2d
from repro.nn.module import Module
from repro.tensor import ops
from repro.tensor.tensor import Tensor, concat
from repro.utils import make_rng


def _check_divisible(value: int, factor: int, what: str) -> None:
    if factor <= 0 or value % factor != 0:
        raise ModelError(f"{what}={value} must be divisible by factor {factor}")


class GroupedConv2d(Module):
    """Grouped convolution preserving the standard conv interface."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int, *,
                 stride: int = 1, padding: int = 0, groups: int = 2,
                 rng: np.random.Generator | None = None):
        super().__init__()
        _check_divisible(in_channels, groups, "in_channels")
        _check_divisible(out_channels, groups, "out_channels")
        self.groups = groups
        self.conv = Conv2d(in_channels, out_channels, kernel_size, stride=stride,
                           padding=padding, groups=groups, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.conv(x)


class BottleneckConv2d(Module):
    """Output-channel bottlenecking followed by a pointwise expansion.

    The transformation reduces the number of filters by ``factor`` and a
    cheap 1x1 convolution restores the channel count so the operator can be
    substituted for a standard convolution.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int, *,
                 stride: int = 1, padding: int = 0, factor: int = 2,
                 rng: np.random.Generator | None = None):
        super().__init__()
        _check_divisible(out_channels, factor, "out_channels")
        self.factor = factor
        reduced = out_channels // factor
        self.reduce = Conv2d(in_channels, reduced, kernel_size, stride=stride,
                             padding=padding, rng=rng)
        self.expand = Conv2d(reduced, out_channels, 1, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.expand(self.reduce(x))


class InputBottleneckConv2d(Module):
    """Input-channel bottlenecking.

    Derived in the paper (§2.3) by interchanging the channel loops and
    re-applying bottlenecking: only the first ``C_in / factor`` input
    channels participate in the convolution.  This operator is *not*
    available in conventional NAS candidate lists.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int, *,
                 stride: int = 1, padding: int = 0, factor: int = 2,
                 rng: np.random.Generator | None = None):
        super().__init__()
        _check_divisible(in_channels, factor, "in_channels")
        self.factor = factor
        self.kept_channels = in_channels // factor
        self.conv = Conv2d(self.kept_channels, out_channels, kernel_size,
                           stride=stride, padding=padding, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        kept = x[:, : self.kept_channels, :, :]
        return self.conv(kept)


class DepthwiseSeparableConv2d(Module):
    """Depthwise convolution followed by a pointwise (1x1) convolution."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int, *,
                 stride: int = 1, padding: int = 0, rng: np.random.Generator | None = None):
        super().__init__()
        self.depthwise = Conv2d(in_channels, in_channels, kernel_size, stride=stride,
                                padding=padding, groups=in_channels, rng=rng)
        self.pointwise = Conv2d(in_channels, out_channels, 1, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.pointwise(self.depthwise(x))


class SpatialBottleneckConv2d(Module):
    """Spatial bottlenecking (§5.3): stride over H and W, convolve, upsample.

    The paper shows this operator is the composition
    ``interchange -> bottleneck(H) -> interchange -> bottleneck(W) -> interchange``;
    at the network level it computes the convolution on a grid reduced by
    ``factor`` in each spatial dimension and restores the resolution with
    nearest-neighbour upsampling.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int, *,
                 stride: int = 1, padding: int = 0, factor: int = 2,
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.factor = factor
        self.conv = Conv2d(in_channels, out_channels, kernel_size,
                           stride=stride * factor, padding=padding, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        reduced = self.conv(x)
        return ops.upsample_nearest2d(reduced, self.factor)


@dataclass(frozen=True)
class ConvTransformConfig:
    """Parameters of a derived convolution operator.

    The unified search space manipulates loop nests; this dataclass is the
    network-level summary of the resulting operator so it can be
    instantiated as a trainable module for Fisher / accuracy evaluation.

    ``group_factors`` may contain several factors: the output channels are
    split evenly and each split is grouped by its own factor (this is how
    the paper's Sequence 3 — ``split -> group -> interchange -> group`` —
    materialises as an operator).
    """

    bottleneck_out: int = 1
    bottleneck_in: int = 1
    spatial_bottleneck: int = 1
    group_factors: tuple[int, ...] = (1,)
    unroll: int = 1  # schedule-only; kept so sequences round-trip losslessly

    @classmethod
    def from_neural_transformations(cls, per_stage, *, source_in_channels: int,
                                    unroll: int = 1) -> "ConvTransformConfig":
        """Fold the neural transformations of each produced loop nest into a
        network-level operator description.

        ``per_stage`` holds, for each loop nest the transform program
        produced, the neural transformations applied to it (the objects a
        :class:`~repro.tenir.schedule.Stage` records).  The fold keys on the
        canonical convolution iterators: shrinking ``co``/``ci`` is output/
        input bottlenecking, shrinking ``oh``/``ow`` is spatial
        bottlenecking, grouping contributes one group factor per nest and
        depthwise resolves to grouping by the effective input channels.
        Bottleneck factors are aggregated with ``max`` across nests, so
        per-nest asymmetries collapse to the strongest reduction.
        """
        # The polyhedral layer never imports nn, so pulling the concrete
        # transformation classes in here creates no cycle; keeping the
        # import local preserves the substrate's independence otherwise.
        from repro.poly.transforms import Bottleneck, Depthwise, Group

        bottleneck_out = bottleneck_in = 1
        spatial_h = spatial_w = 1
        group_factors: list[int | None] = []
        for transformations in per_stage:
            group: int | None = 1
            stage_out = stage_in = stage_h = stage_w = 1
            for transformation in transformations:
                if isinstance(transformation, Depthwise):
                    group = None  # resolved to the effective input channels below
                elif isinstance(transformation, Group):
                    # Only channel grouping has a network-level operator;
                    # groupings of other iterator pairs stay schedule-level.
                    if transformation.outer == "co" and transformation.inner == "ci":
                        group = (group or 1) * transformation.factor
                elif isinstance(transformation, Bottleneck):
                    if transformation.iterator == "co":
                        stage_out *= transformation.factor
                    elif transformation.iterator == "ci":
                        stage_in *= transformation.factor
                    elif transformation.iterator == "oh":
                        stage_h *= transformation.factor
                    elif transformation.iterator == "ow":
                        stage_w *= transformation.factor
            bottleneck_out = max(bottleneck_out, stage_out)
            bottleneck_in = max(bottleneck_in, stage_in)
            spatial_h = max(spatial_h, stage_h)
            spatial_w = max(spatial_w, stage_w)
            group_factors.append(group)
        effective_in = max(source_in_channels // bottleneck_in, 1)
        resolved = tuple(factor if factor is not None else effective_in
                         for factor in group_factors) or (1,)
        return cls(
            bottleneck_out=bottleneck_out,
            bottleneck_in=bottleneck_in,
            spatial_bottleneck=spatial_h if spatial_h == spatial_w else max(spatial_h,
                                                                            spatial_w),
            group_factors=resolved,
            unroll=unroll,
        )

    def compute_reduction(self) -> float:
        """Approximate factor by which multiply-accumulates are reduced."""
        group_reduction = len(self.group_factors) / sum(1.0 / g for g in self.group_factors)
        return (
            self.bottleneck_out
            * self.bottleneck_in
            * self.spatial_bottleneck ** 2
            * group_reduction
        )

    def describe(self) -> str:
        parts = []
        if self.bottleneck_out > 1:
            parts.append(f"bottleneck_out={self.bottleneck_out}")
        if self.bottleneck_in > 1:
            parts.append(f"bottleneck_in={self.bottleneck_in}")
        if self.spatial_bottleneck > 1:
            parts.append(f"spatial={self.spatial_bottleneck}")
        if any(g > 1 for g in self.group_factors):
            parts.append(f"groups={list(self.group_factors)}")
        return "standard" if not parts else ", ".join(parts)


class DerivedConv2d(Module):
    """A convolution operator synthesised by the unified transformation space.

    The module composes input-channel bottlenecking, spatial bottlenecking,
    per-split grouping and output-channel bottlenecking, preserving the
    interface of the standard convolution it replaces.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int, *,
                 stride: int = 1, padding: int = 0,
                 config: ConvTransformConfig | None = None,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or make_rng()
        self.config = config or ConvTransformConfig()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding

        cfg = self.config
        _check_divisible(in_channels, cfg.bottleneck_in, "in_channels")
        _check_divisible(out_channels, cfg.bottleneck_out, "out_channels")
        effective_in = in_channels // cfg.bottleneck_in
        effective_out = out_channels // cfg.bottleneck_out

        n_splits = len(cfg.group_factors)
        _check_divisible(effective_out, n_splits, "split out_channels")
        split_out = effective_out // n_splits
        self.splits = []
        for index, group in enumerate(cfg.group_factors):
            if effective_in % group != 0 or split_out % group != 0:
                raise ModelError(
                    f"group factor {group} does not divide channels "
                    f"({effective_in}->{split_out}) of split {index}"
                )
            conv = Conv2d(effective_in, split_out, kernel_size,
                          stride=stride * cfg.spatial_bottleneck, padding=padding,
                          groups=group, rng=rng)
            self.splits.append(conv)
            setattr(self, f"split{index}", conv)

        self.expand: Conv2d | None = None
        if cfg.bottleneck_out > 1:
            self.expand = Conv2d(effective_out, out_channels, 1, rng=rng)

    @property
    def effective_in_channels(self) -> int:
        return self.in_channels // self.config.bottleneck_in

    def forward(self, x: Tensor) -> Tensor:
        cfg = self.config
        if cfg.bottleneck_in > 1:
            x = x[:, : self.effective_in_channels, :, :]
        pieces = [conv(x) for conv in self.splits]
        out = pieces[0] if len(pieces) == 1 else concat(pieces, axis=1)
        if cfg.spatial_bottleneck > 1:
            out = ops.upsample_nearest2d(out, cfg.spatial_bottleneck)
        if self.expand is not None:
            out = self.expand(out)
        return out

    def flops(self, input_hw: tuple[int, int]) -> int:
        """Multiply-accumulate count for one image, across all internal convs."""
        total = sum(conv.flops(input_hw) for conv in self.splits)
        if self.expand is not None:
            h, w = input_hw
            oh = ops.conv_output_size(h, self.kernel_size, self.stride, self.padding)
            ow = ops.conv_output_size(w, self.kernel_size, self.stride, self.padding)
            total += self.expand.flops((oh, ow))
        return total


#: Candidate operator builders offered to the NAS baselines (BlockSwap /
#: FBNet).  Each maps a standard convolution signature to a replacement
#: module; the unified search is *not* limited to this list.
def build_candidate(kind: str, in_channels: int, out_channels: int, kernel_size: int, *,
                    stride: int = 1, padding: int = 0,
                    rng: np.random.Generator | None = None) -> Module:
    """Instantiate a named NAS candidate operator.

    Supported kinds: ``standard``, ``group2``, ``group4``, ``bottleneck2``,
    ``bottleneck4``, ``depthwise`` and ``spatial2``.
    """
    builders = {
        "standard": lambda: Conv2d(in_channels, out_channels, kernel_size,
                                   stride=stride, padding=padding, rng=rng),
        "group2": lambda: GroupedConv2d(in_channels, out_channels, kernel_size,
                                        stride=stride, padding=padding, groups=2, rng=rng),
        "group4": lambda: GroupedConv2d(in_channels, out_channels, kernel_size,
                                        stride=stride, padding=padding, groups=4, rng=rng),
        "bottleneck2": lambda: BottleneckConv2d(in_channels, out_channels, kernel_size,
                                                stride=stride, padding=padding, factor=2,
                                                rng=rng),
        "bottleneck4": lambda: BottleneckConv2d(in_channels, out_channels, kernel_size,
                                                stride=stride, padding=padding, factor=4,
                                                rng=rng),
        "depthwise": lambda: DepthwiseSeparableConv2d(in_channels, out_channels, kernel_size,
                                                      stride=stride, padding=padding, rng=rng),
        "spatial2": lambda: SpatialBottleneckConv2d(in_channels, out_channels, kernel_size,
                                                    stride=stride, padding=padding, factor=2,
                                                    rng=rng),
    }
    if kind not in builders:
        raise ModelError(f"unknown candidate operator kind '{kind}'")
    return builders[kind]()


CANDIDATE_KINDS: tuple[str, ...] = (
    "standard", "group2", "group4", "bottleneck2", "bottleneck4", "depthwise", "spatial2",
)
