"""Training and evaluation loops.

The :class:`Trainer` reproduces the recipe from the paper's experimental
setup (SGD with momentum, multi-step decay) at whatever scale the
experiment driver requests.  It also exposes :meth:`proxy_fit`, the short
training run used to obtain "final" accuracies for the NAS-Bench-201-style
study (Figure 3) within the compute budget of this reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.loaders import DataLoader
from repro.nn.metrics import AverageMeter, top_k_accuracy
from repro.nn.module import Module
from repro.nn.optim import SGD, MultiStepLR
from repro.tensor import ops
from repro.tensor.tensor import Tensor


@dataclass
class TrainingConfig:
    """Hyper-parameters for a training run."""

    epochs: int = 10
    lr: float = 0.1
    momentum: float = 0.9
    weight_decay: float = 5e-4
    milestones: tuple[int, ...] = (60, 120, 160)
    lr_gamma: float = 0.1

    @classmethod
    def paper_cifar10(cls) -> "TrainingConfig":
        """The exact CIFAR-10 recipe from §6.1 of the paper."""
        return cls(epochs=200, lr=0.1, milestones=(60, 120, 160), lr_gamma=0.1)

    @classmethod
    def proxy(cls, epochs: int = 3) -> "TrainingConfig":
        """A short proxy run used when only a ranking of models is needed."""
        return cls(epochs=epochs, lr=0.05, milestones=(max(epochs - 1, 1),), lr_gamma=0.1)


@dataclass
class EpochStats:
    epoch: int
    train_loss: float
    train_accuracy: float
    lr: float


@dataclass
class TrainingResult:
    """Summary of a completed training run."""

    history: list[EpochStats] = field(default_factory=list)
    final_accuracy: float = 0.0
    final_top5: float = 0.0
    final_error: float = 100.0


class Trainer:
    """Runs SGD training of a model on a :class:`DataLoader`."""

    def __init__(self, model: Module, config: TrainingConfig | None = None):
        self.model = model
        self.config = config or TrainingConfig()
        self.optimizer = SGD(model.parameters(), lr=self.config.lr,
                             momentum=self.config.momentum,
                             weight_decay=self.config.weight_decay)
        self.scheduler = MultiStepLR(self.optimizer, list(self.config.milestones),
                                     gamma=self.config.lr_gamma)

    def train_epoch(self, loader: DataLoader) -> tuple[float, float]:
        self.model.train()
        loss_meter = AverageMeter()
        acc_meter = AverageMeter()
        for images, labels in loader:
            x = Tensor(images)
            logits = self.model(x)
            loss = ops.cross_entropy(logits, labels)
            self.optimizer.zero_grad()
            loss.backward()
            self.optimizer.step()
            loss_meter.update(float(loss.data), len(labels))
            acc_meter.update(top_k_accuracy(logits.data, labels), len(labels))
        return loss_meter.average, acc_meter.average

    def evaluate(self, loader: DataLoader) -> tuple[float, float]:
        """Return (top-1 accuracy, top-5 accuracy) on a loader."""
        self.model.eval()
        top1 = AverageMeter()
        top5 = AverageMeter()
        for images, labels in loader:
            logits = self.model(Tensor(images))
            k5 = min(5, logits.shape[1])
            top1.update(top_k_accuracy(logits.data, labels, k=1), len(labels))
            top5.update(top_k_accuracy(logits.data, labels, k=k5), len(labels))
        return top1.average, top5.average

    def fit(self, train_loader: DataLoader, test_loader: DataLoader | None = None) -> TrainingResult:
        result = TrainingResult()
        for epoch in range(self.config.epochs):
            loss, accuracy = self.train_epoch(train_loader)
            result.history.append(EpochStats(epoch=epoch, train_loss=loss,
                                             train_accuracy=accuracy,
                                             lr=self.scheduler.current_lr))
            self.scheduler.step()
        eval_loader = test_loader if test_loader is not None else train_loader
        result.final_accuracy, result.final_top5 = self.evaluate(eval_loader)
        result.final_error = 100.0 * (1.0 - result.final_accuracy)
        return result


def proxy_fit(model: Module, train_loader: DataLoader, test_loader: DataLoader | None = None,
              epochs: int = 3) -> TrainingResult:
    """Short proxy training used to rank candidate architectures."""
    trainer = Trainer(model, TrainingConfig.proxy(epochs=epochs))
    return trainer.fit(train_loader, test_loader)
