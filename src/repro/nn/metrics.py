"""Classification metrics."""

from __future__ import annotations

import numpy as np


def top_k_accuracy(logits: np.ndarray, labels: np.ndarray, k: int = 1) -> float:
    """Fraction of rows whose true label is among the top-k logits."""
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    if logits.ndim != 2:
        raise ValueError(f"expected (N, K) logits, got shape {logits.shape}")
    top_k = np.argsort(-logits, axis=1)[:, :k]
    hits = (top_k == labels[:, None]).any(axis=1)
    return float(hits.mean())


def top1_error(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 error in percent (the unit used by the paper's Figure 3/9)."""
    return 100.0 * (1.0 - top_k_accuracy(logits, labels, k=1))


class AverageMeter:
    """Tracks a running average of a scalar (loss, accuracy, ...)."""

    def __init__(self) -> None:
        self.total = 0.0
        self.count = 0

    def update(self, value: float, n: int = 1) -> None:
        self.total += value * n
        self.count += n

    @property
    def average(self) -> float:
        return self.total / self.count if self.count else 0.0
