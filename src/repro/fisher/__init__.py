"""Fisher Potential: compile-time legality for neural transformations."""

from repro.fisher.potential import (
    FisherProfile,
    LayerFisherRecord,
    candidate_layer_fisher,
    channel_fisher,
    fisher_profile,
    layer_fisher,
    network_fisher_potential,
)
from repro.fisher.legality import (
    FisherLegalityChecker,
    LegalityDecision,
    sensitive_layers,
)

__all__ = [
    "FisherProfile", "LayerFisherRecord", "candidate_layer_fisher", "channel_fisher",
    "fisher_profile", "layer_fisher", "network_fisher_potential",
    "FisherLegalityChecker", "LegalityDecision", "sensitive_layers",
]
