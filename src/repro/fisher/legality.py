"""Fisher-Potential legality check for neural transformations (§5.2).

The paper's rule: a proposed architecture is legal if its Fisher Potential
at initialisation is not below the original network's.  The checker keeps
the original network's per-layer profile, scores candidate layer
replacements locally (see :func:`candidate_layer_fisher`) and accepts or
rejects them; a relative threshold generalises the rule for the ablation
study.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fisher.potential import (
    FisherProfile,
    LayerFisherRecord,
    candidate_layer_fisher,
    fisher_profile,
)
from repro.nn.module import Module


@dataclass
class LegalityDecision:
    """Outcome of checking one candidate."""

    legal: bool
    candidate_potential: float
    original_potential: float
    layer: str | None = None
    reason: str = ""

    @property
    def margin(self) -> float:
        return self.candidate_potential - self.original_potential


class FisherLegalityChecker:
    """Accept/reject candidate layer substitutions by Fisher Potential.

    ``threshold`` is the fraction of the original potential a candidate
    must reach; the paper uses 1.0 (reject anything below the original).
    """

    def __init__(self, profile: FisherProfile, threshold: float = 1.0):
        if threshold <= 0:
            raise ValueError("the legality threshold must be positive")
        self.profile = profile
        self.threshold = threshold
        self.checked = 0
        self.rejected = 0

    # ------------------------------------------------------------------
    @classmethod
    def from_model(cls, model: Module, images: np.ndarray, labels: np.ndarray,
                   threshold: float = 1.0) -> "FisherLegalityChecker":
        return cls(fisher_profile(model, images, labels), threshold)

    @property
    def original_potential(self) -> float:
        return self.profile.total

    @property
    def rejection_rate(self) -> float:
        return self.rejected / self.checked if self.checked else 0.0

    # ------------------------------------------------------------------
    def check_layer_candidate(self, layer_name: str, candidate: Module) -> LegalityDecision:
        """Check a single-layer substitution against the original network."""
        record = self.profile.layers[layer_name]
        candidate_score = candidate_layer_fisher(record, candidate)
        candidate_total = self.profile.without_layer(layer_name) + candidate_score
        return self._decide(candidate_total, layer=layer_name)

    def check_layer_scores(self, replacements: dict[str, float]) -> LegalityDecision:
        """Check a multi-layer substitution given candidate layer scores."""
        candidate_total = self.profile.total
        for layer_name, candidate_score in replacements.items():
            candidate_total += candidate_score - self.profile.score_of(layer_name)
        return self._decide(candidate_total)

    def check_network_potential(self, candidate_potential: float) -> LegalityDecision:
        """Check a fully re-evaluated candidate network potential."""
        return self._decide(candidate_potential)

    # ------------------------------------------------------------------
    def _decide(self, candidate_potential: float, layer: str | None = None) -> LegalityDecision:
        self.checked += 1
        required = self.original_potential * self.threshold
        legal = candidate_potential >= required
        if not legal:
            self.rejected += 1
        reason = ("accepted" if legal else
                  f"candidate potential {candidate_potential:.4g} below required {required:.4g}")
        return LegalityDecision(
            legal=legal,
            candidate_potential=candidate_potential,
            original_potential=self.original_potential,
            layer=layer,
            reason=reason,
        )


def sensitive_layers(profile: FisherProfile, fraction: float = 0.25) -> list[str]:
    """Layers with the highest Fisher scores (most sensitive to compression).

    §7.4 notes that Fisher Potential marks some layers as too sensitive to
    compress; the search uses this helper to report them.
    """
    ranked = sorted(profile.layers.values(), key=lambda rec: rec.score, reverse=True)
    count = max(1, int(round(len(ranked) * fraction)))
    return [record.name for record in ranked[:count]]
