"""Fisher Potential (§5.2): the paper's representational legality metric.

For a convolution channel ``c`` with activation tensor ``A`` (N x W x H)
and loss gradient ``g`` of the same shape, the channel score is

    Delta_c = 1/(2N) * sum_n ( - sum_ij A_nij * g_nij )^2        (eq. 4)

A layer's score is the sum over its output channels (eq. 5), and the
Fisher Potential of a network is the sum of layer scores computed on a
single random minibatch at initialisation.  Proposed architectures whose
potential falls below the original's are rejected without training.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ModelError
from repro.nn.layers import Conv2d
from repro.nn.module import Module
from repro.tensor import ops
from repro.tensor.tensor import Tensor


def channel_fisher(activation: np.ndarray, gradient: np.ndarray) -> np.ndarray:
    """Per-channel Fisher scores from an (N, C, H, W) activation/gradient pair."""
    if activation.shape != gradient.shape:
        raise ModelError(
            f"activation {activation.shape} and gradient {gradient.shape} shapes differ")
    if activation.ndim != 4:
        raise ModelError(f"expected NCHW activations, got shape {activation.shape}")
    batch = activation.shape[0]
    per_example = -(activation * gradient).sum(axis=(2, 3))   # (N, C)
    return (per_example ** 2).sum(axis=0) / (2.0 * batch)      # (C,)


def layer_fisher(activation: np.ndarray, gradient: np.ndarray) -> float:
    """Layer score: sum of channel scores (eq. 5)."""
    return float(channel_fisher(activation, gradient).sum())


@dataclass
class LayerFisherRecord:
    """Everything recorded about one convolution during the Fisher pass."""

    name: str
    score: float
    input_activation: np.ndarray
    output_gradient: np.ndarray
    output_reference_std: np.ndarray
    output_shape: tuple[int, ...]
    in_channels: int
    out_channels: int
    kernel_size: int
    stride: int
    padding: int
    groups: int
    input_hw: tuple[int, int]


@dataclass
class FisherProfile:
    """Per-layer Fisher scores of a network on one minibatch."""

    layers: dict[str, LayerFisherRecord] = field(default_factory=dict)
    loss: float = 0.0

    @property
    def total(self) -> float:
        """The network's Fisher Potential."""
        return sum(record.score for record in self.layers.values())

    def score_of(self, name: str) -> float:
        return self.layers[name].score

    def layer_names(self) -> list[str]:
        return list(self.layers)

    def without_layer(self, name: str) -> float:
        """Potential of the network excluding one layer's contribution."""
        return self.total - self.layers[name].score


def _conv_layers(model: Module) -> list[tuple[str, Conv2d]]:
    convs = []
    for name, module in model.named_modules():
        if isinstance(module, Conv2d):
            convs.append((name, module))
    return convs


def fisher_profile(model: Module, images: np.ndarray, labels: np.ndarray) -> FisherProfile:
    """Run one forward/backward pass and collect per-layer Fisher scores.

    The model is evaluated in training mode (batch statistics) as in the
    reference implementation; recording hooks are enabled only for the
    duration of the call.
    """
    convs = _conv_layers(model)
    previous_flags = [conv.record_activations for _, conv in convs]
    for _, conv in convs:
        conv.record_activations = True
        conv.last_input = None
        conv.last_output = None

    was_training = model.training
    model.train(True)
    logits = model(Tensor(np.asarray(images)))
    loss = ops.cross_entropy(logits, np.asarray(labels))
    model.zero_grad()
    loss.backward()

    profile = FisherProfile(loss=float(loss.data))
    for (name, conv), flag in zip(convs, previous_flags):
        output = conv.last_output
        conv.record_activations = flag
        if output is None or output.grad is None or conv.last_input is None:
            continue
        score = layer_fisher(output.data, output.grad)
        in_hw = conv.last_input.shape[2:]
        profile.layers[name] = LayerFisherRecord(
            name=name,
            score=score,
            input_activation=conv.last_input.data.copy(),
            output_gradient=output.grad.copy(),
            output_reference_std=output.data.std(axis=(0, 2, 3)),
            output_shape=tuple(output.shape),
            in_channels=conv.in_channels,
            out_channels=conv.out_channels,
            kernel_size=conv.kernel_size,
            stride=conv.stride,
            padding=conv.padding,
            groups=conv.groups,
            input_hw=(int(in_hw[0]), int(in_hw[1])),
        )
        conv.last_input = None
        conv.last_output = None

    model.train(was_training)
    model.zero_grad()
    return profile


def network_fisher_potential(model: Module, images: np.ndarray, labels: np.ndarray) -> float:
    """The scalar Fisher Potential of a network on one minibatch."""
    return fisher_profile(model, images, labels).total


def candidate_layer_fisher(record: LayerFisherRecord, candidate: Module) -> float:
    """Fisher score of a candidate replacement for one convolution layer.

    The candidate is evaluated *locally*: the original layer's recorded
    input activations are pushed through the candidate, and the original
    layer's output gradient stands in for the candidate's (both produce
    tensors of identical shape, and at initialisation the upstream loss
    geometry is unchanged to first order).

    Because every convolution in the evaluated networks is followed by
    batch normalisation, the full-network score is insensitive to the raw
    scale of the convolution output (BN's backward divides the gradient by
    the batch standard deviation).  The local evaluation reproduces that
    invariance by rescaling the candidate's activations channel-wise to the
    original layer's channel standard deviations before applying eq. 4;
    without this, candidates built from stacked convolutions would be
    favoured purely for their larger initial variance.  This is the cheap
    evaluation mode used during search; DESIGN.md discusses the
    full-network alternative, which :func:`fisher_profile` supports
    directly.
    """
    candidate.train(True)
    output = candidate(Tensor(record.input_activation))
    if tuple(output.shape) != record.output_shape:
        raise ModelError(
            f"candidate output shape {tuple(output.shape)} does not match the original "
            f"layer's {record.output_shape}")
    activation = _match_channel_scale(output.data, record)
    return layer_fisher(activation, record.output_gradient)


def _match_channel_scale(activation: np.ndarray, record: LayerFisherRecord) -> np.ndarray:
    """Rescale activations channel-wise to the original layer's channel stds."""
    candidate_std = activation.std(axis=(0, 2, 3), keepdims=True)
    reference_std = record.output_reference_std.reshape(1, -1, 1, 1)
    safe = np.where(candidate_std > 1e-12, candidate_std, 1.0)
    return activation / safe * reference_std
