"""The public façade: one front door to the unified optimizer.

The paper's pitch is that NAS and program-transformation exploration are
*one* search you can point at any model/platform pair.  This module makes
the repository read that way: instead of hand-wiring an
:class:`~repro.core.engine.EvaluationEngine`, a
:class:`~repro.core.unified_space.UnifiedSpaceConfig`, a
:class:`~repro.core.search.UnifiedSearch`, a platform and a dataset from
five subpackages, callers say::

    import repro

    result = repro.optimize("resnet34", platform="cpu", budget=60)
    print(result.speedup, result.programs())

or, when several searches should share one engine, one cache directory and
one lifecycle::

    with repro.OptimizationSession(cache_dir="~/.cache/repro") as session:
        for platform in ("cpu", "gpu", "mcpu", "mgpu"):
            result = session.optimize("resnet34", platform=platform)

Requests and results are typed frozen dataclasses with ``to_dict`` /
``from_dict`` JSON round-trips, so runs can be archived, diffed and
replayed; an *observer* callback (see :mod:`repro.core.events`) streams
per-generation progress out of long searches.  The session guarantees the
engine teardown contract — persistent worker pools are shut down and dirty
caches are written back even when the body raises.

See DESIGN.md §9 for the façade architecture and the stability policy.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping, Sequence

from repro.core.cache_store import CacheStore
from repro.core.engine import EvaluationEngine
from repro.core.events import Observer
from repro.core.program import (
    TransformProgram,
    program_from_dict,
    program_to_dict,
    step,
)
from repro.core.search import SEARCH_STRATEGY_REGISTRY, UnifiedSearch, UnifiedSearchResult
from repro.core.sequences import SEQUENCE_KINDS, predefined_program
from repro.core.unified_space import UnifiedSpaceConfig
from repro.data import SyntheticImageDataset
from repro.errors import ReproError
from repro.hardware.platform import PLATFORMS, PlatformSpec, get_platform
from repro.models import (
    densenet161,
    densenet169,
    densenet201,
    resnet18,
    resnet34,
    resnext29_2x64d,
)
from repro.nn.module import Module
from repro.poly.statement import ConvolutionShape

#: The module's public surface, audited by ``tests/test_docs.py`` (every
#: name must carry an example-bearing docstring).
__all__ = [
    "OptimizationSession", "OptimizationRequest", "OptimizationResult",
    "LayerDecision", "TuningResult", "optimize", "tune", "resume_checkpoint",
    "build_model", "MODEL_BUILDERS", "list_platforms", "list_sequences",
    "program_to_dict", "program_from_dict", "resolve_program",
    "resolve_shape", "default_cache_dir", "env_cache_dir", "CacheStore",
    "REQUEST_SCHEMA", "RESULT_SCHEMA", "TUNING_SCHEMA",
]


def default_cache_dir() -> Path:
    """The directory the ``repro cache`` subcommands inspect by default.

    Engine caches are opt-in: ``optimize``/``tune`` write stores only when
    given a ``cache_dir`` (the CLI also honours the ``REPRO_CACHE_DIR``
    environment variable as that default), and this is where they land
    when ``REPRO_CACHE_DIR`` names no other place.  A ``cache_dir`` holds
    one sharded :class:`~repro.core.cache_store.CacheStore` (one
    ``shard-<platform>.rcs`` segment per platform, shared by every engine
    and every process); legacy ``engine-*.pkl`` monolithic pickles in the
    same directory are upgraded by ``repro cache migrate``.

    Example::

        shards = sorted(default_cache_dir().glob("shard-*.rcs"))
    """
    import os

    return Path(os.environ.get("REPRO_CACHE_DIR", "~/.cache/repro")).expanduser()


def env_cache_dir() -> str | None:
    """``REPRO_CACHE_DIR`` when set — the CLI's implicit ``--cache-dir``.

    Example::

        cache_dir = args.cache_dir or env_cache_dir()
    """
    import os

    return os.environ.get("REPRO_CACHE_DIR") or None


#: Schema tags carried by the serialised documents, so readers can reject
#: payloads written by an incompatible build.
REQUEST_SCHEMA = "repro.optimization-request/1"
RESULT_SCHEMA = "repro.optimization-result/1"
TUNING_SCHEMA = "repro.tuning-result/1"

#: Networks :func:`build_model` (and the CLI) can construct by name.
MODEL_BUILDERS: dict[str, Callable[..., Module]] = {
    "resnet18": resnet18,
    "resnet34": resnet34,
    "resnext29_2x64d": resnext29_2x64d,
    "densenet161": densenet161,
    "densenet169": densenet169,
    "densenet201": densenet201,
}


def build_model(name: str, *, width_multiplier: float = 0.25) -> Module:
    """Construct a model-zoo network by name (the CLI's ``--model`` values).

    Example::

        model = build_model("resnet34", width_multiplier=0.5)
    """
    if name.startswith("instance:"):
        raise ReproError(
            f"request model '{name}' records a live module instance, not a "
            f"zoo name; pass the model object to optimize() again to replay")
    try:
        builder = MODEL_BUILDERS[name.lower()]
    except KeyError:
        raise ReproError(
            f"unknown model '{name}'; expected one of {sorted(MODEL_BUILDERS)}"
        ) from None
    return builder(width_multiplier=width_multiplier)


# ---------------------------------------------------------------------------
# Serialisation helpers shared by the typed documents
# ---------------------------------------------------------------------------
def resolve_program(program: TransformProgram | str) -> TransformProgram:
    """Accept a program object or a named sequence kind (``"seq1"``, ...).

    Example::

        program = resolve_program("seq1")
    """
    if isinstance(program, TransformProgram):
        return program
    return predefined_program(program)


def resolve_shape(shape: ConvolutionShape | Sequence[int]) -> ConvolutionShape:
    """Accept a :class:`ConvolutionShape` or a plain ``(co, ci, h, w, kh, kw)``.

    Example::

        shape = resolve_shape((64, 64, 16, 16, 3, 3))
    """
    if isinstance(shape, ConvolutionShape):
        return shape
    values = [int(v) for v in shape]
    if len(values) not in (6, 7, 8):
        raise ReproError(
            "a convolution shape needs (c_out, c_in, h_out, w_out, k_h, k_w"
            "[, groups[, stride]]) — got " + repr(tuple(shape)))
    return ConvolutionShape(*values)


def _shape_to_dict(shape: ConvolutionShape) -> dict:
    return dataclasses.asdict(shape)


def _shape_from_dict(document: Mapping) -> ConvolutionShape:
    return ConvolutionShape(**{key: int(value) for key, value in document.items()})


def _require(document: Mapping, keys: Sequence[str], what: str) -> None:
    missing = [key for key in keys if key not in document]
    if missing:
        raise ReproError(f"{what} document is missing keys {missing}; "
                         f"got keys {sorted(document)}")


# ---------------------------------------------------------------------------
# The typed request / result objects
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class OptimizationRequest:
    """Everything one ``repro.optimize`` run depends on, as data.

    ``model`` is a model-zoo name; when a caller passes a live
    :class:`~repro.nn.module.Module` instead, the request records
    ``instance:<ClassName>`` for provenance — such a request cannot be
    replayed without the original object (:func:`build_model` refuses the
    marker with a clear message).  A request round-trips through
    :meth:`to_dict` / :meth:`from_dict`, so an archived result names the
    run that produced it.

    Example::

        request = OptimizationRequest(model="resnet34", platform="gpu",
                                      strategy="model_guided", seed=7)
        result = session.optimize(request=request)
    """

    model: str = "resnet34"
    platform: str = "cpu"
    strategy: str = "greedy"
    configurations: int = 60
    tuner_trials: int = 4
    fisher_threshold: float = 1.0
    seed: int = 0
    width_multiplier: float = 0.25
    image_size: int = 16
    fisher_batch: int = 4
    #: pending-point imputation for model_guided's batch-concurrent rounds
    #: (see repro.core.predictor.LIAR_STRATEGIES; "none" disables it)
    liar: str = "cl_mean"
    #: surrogate learner for model_guided (repro.core.predictor.LEARNERS)
    learner: str = "ridge"
    #: acquisition function for model_guided's candidate selection
    #: (repro.core.acquisition.ACQUISITIONS; "rank" restores the
    #: historical rank-by-predicted-speedup bit-identically)
    acquisition: str = "rank"
    #: candidate featurization (repro.core.encoding.ENCODINGS)
    encoding: str = "flat"

    def __post_init__(self) -> None:
        from repro.core.acquisition import ACQUISITION_REGISTRY
        from repro.core.encoding import ENCODING_REGISTRY
        from repro.core.predictor import LEARNER_REGISTRY, LIAR_STRATEGIES

        get_platform(self.platform)  # fail fast on unknown targets
        if self.strategy not in SEARCH_STRATEGY_REGISTRY:
            raise ReproError(
                f"unknown strategy '{self.strategy}'; expected one of "
                f"{sorted(SEARCH_STRATEGY_REGISTRY)}")
        if self.liar not in ("none",) + LIAR_STRATEGIES:
            raise ReproError(
                f"unknown liar strategy '{self.liar}'; expected one of "
                f"{('none',) + LIAR_STRATEGIES}")
        if self.learner not in LEARNER_REGISTRY:
            raise ReproError(
                f"unknown learner '{self.learner}'; expected one of "
                f"{tuple(LEARNER_REGISTRY)}")
        if self.acquisition not in ACQUISITION_REGISTRY:
            raise ReproError(
                f"unknown acquisition '{self.acquisition}'; expected one of "
                f"{tuple(ACQUISITION_REGISTRY)}")
        if self.encoding not in ENCODING_REGISTRY:
            raise ReproError(
                f"unknown encoding '{self.encoding}'; expected one of "
                f"{tuple(ENCODING_REGISTRY)}")
        if self.configurations < 1:
            raise ReproError("the search budget must be at least 1 configuration")
        if self.tuner_trials < 1:
            raise ReproError("the tuner needs at least one trial")
        if self.fisher_batch < 1:
            raise ReproError("the Fisher profile needs at least one example")

    def to_dict(self) -> dict:
        document = dataclasses.asdict(self)
        document["schema"] = REQUEST_SCHEMA
        return document

    @classmethod
    def from_dict(cls, document: Mapping) -> "OptimizationRequest":
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{key: value for key, value in document.items() if key in fields})


@dataclass(frozen=True)
class LayerDecision:
    """The program chosen for one layer, with the scores behind the choice.

    Example::

        for decision in result.layers:
            if decision.is_neural:
                print(decision.layer, decision.program.kind, decision.speedup)
    """

    layer: str
    program: TransformProgram
    latency_seconds: float
    baseline_latency_seconds: float
    fisher_score: float
    baseline_fisher_score: float
    shape: ConvolutionShape | None = None

    @property
    def speedup(self) -> float:
        return self.baseline_latency_seconds / max(self.latency_seconds, 1e-12)

    @property
    def is_neural(self) -> bool:
        return self.program.is_neural

    def to_dict(self) -> dict:
        return {
            "layer": self.layer,
            "program": program_to_dict(self.program),
            "latency_seconds": self.latency_seconds,
            "baseline_latency_seconds": self.baseline_latency_seconds,
            "fisher_score": self.fisher_score,
            "baseline_fisher_score": self.baseline_fisher_score,
            "shape": _shape_to_dict(self.shape) if self.shape is not None else None,
        }

    @classmethod
    def from_dict(cls, document: Mapping) -> "LayerDecision":
        _require(document, ("layer", "program", "latency_seconds",
                            "baseline_latency_seconds"), "layer decision")
        shape = document.get("shape")
        return cls(
            layer=document["layer"],
            program=program_from_dict(document["program"]),
            latency_seconds=float(document["latency_seconds"]),
            baseline_latency_seconds=float(document["baseline_latency_seconds"]),
            fisher_score=float(document.get("fisher_score", 0.0)),
            baseline_fisher_score=float(document.get("baseline_fisher_score", 0.0)),
            shape=_shape_from_dict(shape) if shape else None,
        )


@dataclass(frozen=True)
class OptimizationResult:
    """Outcome of one façade optimisation run.

    Carries the chosen program per layer, the per-layer and end-to-end
    latencies, the search and engine statistics, and (when the run went
    through the façade) the originating request.  ``to_dict`` /
    ``from_dict`` round-trip through JSON; ``from_dict`` ignores unknown
    keys, so the experiment registry can embed a result inside a larger
    envelope and the envelope still deserialises as a result.

    Example::

        result = repro.optimize("resnet34", platform="cpu")
        archived = json.dumps(result.to_dict())
        restored = OptimizationResult.from_dict(json.loads(archived))
        model = restored.apply_to(repro.build_model("resnet34"))
    """

    platform: str
    strategy: str
    seed: int
    baseline_latency_seconds: float
    optimized_latency_seconds: float
    layers: tuple[LayerDecision, ...] = ()
    search_statistics: dict = field(default_factory=dict)
    engine_statistics: dict = field(default_factory=dict)
    fisher_original: float = 0.0
    fisher_optimized: float = 0.0
    request: OptimizationRequest | None = None

    @property
    def speedup(self) -> float:
        return self.baseline_latency_seconds / max(self.optimized_latency_seconds, 1e-12)

    def programs(self) -> dict[str, TransformProgram]:
        """The chosen transform program per optimised layer."""
        return {decision.layer: decision.program for decision in self.layers}

    def neural_layers(self) -> tuple[str, ...]:
        """Layers whose chosen program substitutes a derived operator."""
        return tuple(d.layer for d in self.layers if d.is_neural)

    def summary(self) -> str:
        """A one-paragraph human rendering (the CLI's non-JSON output)."""
        lines = [
            f"platform {self.platform} · strategy {self.strategy} · seed {self.seed}",
            f"baseline  {self.baseline_latency_seconds * 1e3:9.3f} ms",
            f"optimised {self.optimized_latency_seconds * 1e3:9.3f} ms "
            f"({self.speedup:.2f}x speedup)",
            f"layers: {len(self.layers)} optimised, "
            f"{len(self.neural_layers())} with derived operators",
        ]
        for decision in self.layers:
            if decision.is_neural:
                lines.append(f"  {decision.layer:32s} {decision.program.kind:20s} "
                             f"{decision.speedup:5.2f}x")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "schema": RESULT_SCHEMA,
            "platform": self.platform,
            "strategy": self.strategy,
            "seed": self.seed,
            "baseline_latency_seconds": self.baseline_latency_seconds,
            "optimized_latency_seconds": self.optimized_latency_seconds,
            "speedup": self.speedup,
            "layers": [decision.to_dict() for decision in self.layers],
            "search_statistics": dict(self.search_statistics),
            "engine_statistics": dict(self.engine_statistics),
            "fisher_original": self.fisher_original,
            "fisher_optimized": self.fisher_optimized,
            "request": self.request.to_dict() if self.request is not None else None,
        }

    @classmethod
    def from_dict(cls, document: Mapping) -> "OptimizationResult":
        _require(document, ("platform", "baseline_latency_seconds",
                            "optimized_latency_seconds"), "optimization result")
        schema = document.get("schema")
        if schema is not None and schema != RESULT_SCHEMA:
            raise ReproError(f"cannot read schema '{schema}'; "
                             f"this build reads '{RESULT_SCHEMA}'")
        request = document.get("request")
        return cls(
            platform=document["platform"],
            strategy=document.get("strategy", "greedy"),
            seed=int(document.get("seed", 0)),
            baseline_latency_seconds=float(document["baseline_latency_seconds"]),
            optimized_latency_seconds=float(document["optimized_latency_seconds"]),
            layers=tuple(LayerDecision.from_dict(entry)
                         for entry in document.get("layers", ())),
            search_statistics=dict(document.get("search_statistics", {})),
            engine_statistics=dict(document.get("engine_statistics", {})),
            fisher_original=float(document.get("fisher_original", 0.0)),
            fisher_optimized=float(document.get("fisher_optimized", 0.0)),
            request=OptimizationRequest.from_dict(request) if request else None,
        )

    @classmethod
    def from_search(cls, outcome: UnifiedSearchResult, *, strategy: str,
                    seed: int, engine_statistics: Mapping | None = None,
                    request: OptimizationRequest | None = None) -> "OptimizationResult":
        """Wrap a :class:`UnifiedSearchResult` in the façade's result type."""
        layers = tuple(
            LayerDecision(
                layer=choice.layer, program=choice.sequence,
                latency_seconds=choice.latency_seconds,
                baseline_latency_seconds=choice.baseline_latency_seconds,
                fisher_score=choice.fisher_score,
                baseline_fisher_score=choice.baseline_fisher_score,
                shape=choice.shape)
            for choice in outcome.choices.values())
        statistics = dataclasses.asdict(outcome.statistics)
        statistics["rejection_rate"] = outcome.statistics.rejection_rate
        return cls(
            platform=outcome.platform, strategy=strategy, seed=seed,
            baseline_latency_seconds=outcome.baseline_latency_seconds,
            optimized_latency_seconds=outcome.optimized_latency_seconds,
            layers=layers, search_statistics=statistics,
            engine_statistics=dict(engine_statistics or {}),
            fisher_original=outcome.fisher_original,
            fisher_optimized=outcome.fisher_optimized,
            request=request)

    # ------------------------------------------------------------------
    def apply_to(self, model: Module, seed: int | None = None) -> Module:
        """Substitute the chosen derived operators into ``model`` (in place).

        Works from the serialised decisions alone, so a result read back
        with :meth:`from_dict` can re-materialise the optimised network.
        Layers whose program is not neural — or that the model does not
        expose — keep their original convolution.
        """
        from repro.core.search import substitute_programs

        return substitute_programs(
            model,
            [(decision.layer, decision.program, decision.shape)
             for decision in self.layers],
            seed=self.seed if seed is None else seed)


@dataclass(frozen=True)
class TuningResult:
    """Outcome of tuning one convolution under one program on one platform.

    Example::

        tuned = repro.tune((64, 64, 16, 16, 3, 3), "seq1", platform="mgpu")
        print(tuned.latency_ms)
    """

    platform: str
    shape: ConvolutionShape
    program: TransformProgram
    latency_seconds: float
    tuner_trials: int
    seed: int

    @property
    def latency_ms(self) -> float:
        return self.latency_seconds * 1e3

    def to_dict(self) -> dict:
        return {
            "schema": TUNING_SCHEMA,
            "platform": self.platform,
            "shape": _shape_to_dict(self.shape),
            "program": program_to_dict(self.program),
            "latency_seconds": self.latency_seconds,
            "tuner_trials": self.tuner_trials,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, document: Mapping) -> "TuningResult":
        _require(document, ("platform", "shape", "program", "latency_seconds"),
                 "tuning result")
        return cls(
            platform=document["platform"],
            shape=_shape_from_dict(document["shape"]),
            program=program_from_dict(document["program"]),
            latency_seconds=float(document["latency_seconds"]),
            tuner_trials=int(document.get("tuner_trials", 0)),
            seed=int(document.get("seed", 0)),
        )


# ---------------------------------------------------------------------------
# The session: engine lifecycle behind a context manager
# ---------------------------------------------------------------------------
class OptimizationSession:
    """Owns engines, caches and seeds for a batch of façade calls.

    One session holds one :class:`EvaluationEngine` per
    ``(platform, tuner_trials, seed)`` it was asked to touch.  Engines are
    created lazily, share the session's ``cache_dir`` — one sharded
    :class:`~repro.core.cache_store.CacheStore`, a shard per platform,
    safe to share with any number of concurrent sessions and processes —
    and are torn down — pending cache entries appended, worker pools shut
    down — by :meth:`close`, which the context-manager exit calls even
    when the body raised.

    Example::

        with OptimizationSession(cache_dir="~/.cache/repro") as session:
            for platform in ("cpu", "gpu"):
                result = session.optimize("resnet34", platform=platform)
    """

    def __init__(self, platform: str = "cpu", *, tuner_trials: int = 4,
                 seed: int = 0, cache_dir: str | Path | None = None,
                 cache_store: CacheStore | None = None,
                 parallel: str = "serial", max_workers: int | None = None,
                 observer: Observer | None = None):
        get_platform(platform)  # fail fast on unknown targets
        if cache_dir is not None and cache_store is not None:
            raise ReproError("pass either cache_dir or a prebuilt "
                             "cache_store, not both")
        self.platform = platform
        self.tuner_trials = tuner_trials
        self.seed = seed
        self.cache_dir = (Path(cache_dir).expanduser()
                          if cache_dir is not None else None)
        if cache_store is not None:
            # A prebuilt store (e.g. the optimization service's, shared by
            # every job in the daemon) wins; sessions never own it.
            self.cache_store = cache_store
            self.cache_dir = cache_store.directory
        else:
            self.cache_store = (CacheStore(self.cache_dir)
                                if self.cache_dir is not None else None)
        self.parallel = parallel
        self.max_workers = max_workers
        self.observer = observer
        self._engines: dict[tuple[str, int, int], EvaluationEngine] = {}
        self._closed = False

    # ------------------------------------------------------------------
    def engine(self, platform: str | None = None, *,
               tuner_trials: int | None = None,
               seed: int | None = None) -> EvaluationEngine:
        """The session's engine for ``(platform, tuner_trials, seed)``.

        Created on first use; later calls with the same key return the
        same engine, so every search in the session shares its caches.
        """
        key = (get_platform(platform or self.platform).name,
               self.tuner_trials if tuner_trials is None else int(tuner_trials),
               self.seed if seed is None else int(seed))
        engine = self._engines.get(key)
        if engine is None:
            engine = EvaluationEngine(
                get_platform(key[0]), tuner_trials=key[1], seed=key[2],
                cache_store=self.cache_store, parallel=self.parallel,
                max_workers=self.max_workers)
            self._engines[key] = engine
            self._closed = False
        return engine

    @property
    def engines(self) -> tuple[EvaluationEngine, ...]:
        return tuple(self._engines.values())

    # ------------------------------------------------------------------
    def optimize(self, model: Module | str | None = None, *,
                 request: OptimizationRequest | None = None,
                 platform: str | None = None, strategy: str | None = None,
                 budget: int | None = None, configurations: int | None = None,
                 tuner_trials: int | None = None,
                 fisher_threshold: float | None = None,
                 seed: int | None = None, width_multiplier: float | None = None,
                 image_size: int | None = None, fisher_batch: int | None = None,
                 liar: str | None = None, learner: str | None = None,
                 acquisition: str | None = None, encoding: str | None = None,
                 observer: Observer | None = None,
                 checkpoint: str | Path | None = None,
                 checkpoint_interval: float = 0.0) -> OptimizationResult:
        """Run the unified search for one model on one platform.

        Either pass a prebuilt ``request`` (every knob as data), or the
        individual keywords — ``budget`` is the number of configurations
        the search may evaluate.  Keywords passed alongside a ``request``
        override the corresponding request fields (re-validated).
        ``model`` may be a zoo name or a live
        :class:`~repro.nn.module.Module`.

        ``checkpoint`` names a file to persist the search's resume point
        to (atomically, after every tuning batch, rate-limited to one
        write per ``checkpoint_interval`` seconds): a killed run continues
        with :func:`resume_checkpoint` / ``repro resume`` to the
        bit-identical result an uninterrupted run would have produced.
        """
        if budget is not None and configurations is not None and budget != configurations:
            raise ReproError("pass either budget or configurations, not both")
        if configurations is None:
            configurations = budget
        instance: Module | None = model if isinstance(model, Module) else None
        overrides = {key: value for key, value in (
            ("platform", None if platform is None else get_platform(platform).name),
            ("strategy", strategy), ("configurations", configurations),
            ("tuner_trials", tuner_trials), ("fisher_threshold", fisher_threshold),
            ("seed", seed), ("width_multiplier", width_multiplier),
            ("image_size", image_size), ("fisher_batch", fisher_batch),
            ("liar", liar), ("learner", learner),
            ("acquisition", acquisition), ("encoding", encoding),
        ) if value is not None}
        if isinstance(model, str):
            overrides["model"] = model
        elif instance is not None:
            # A live module has no zoo name; the marker keeps the archived
            # request honest (build_model refuses it with a clear message).
            overrides["model"] = f"instance:{type(instance).__name__}"
        if request is None:
            request = OptimizationRequest(**{
                "platform": get_platform(self.platform).name,
                "tuner_trials": self.tuner_trials, "seed": self.seed,
                **overrides})
        elif overrides:
            request = dataclasses.replace(request, **overrides)
        if instance is None:
            instance = build_model(request.model,
                                   width_multiplier=request.width_multiplier)

        dataset = SyntheticImageDataset.cifar10_like(
            train_size=max(32, 4 * request.fisher_batch),
            test_size=16, image_size=request.image_size, seed=request.seed)
        images, labels = dataset.random_minibatch(request.fisher_batch,
                                                  seed=request.seed)
        engine = self.engine(request.platform, tuner_trials=request.tuner_trials,
                             seed=request.seed)
        search = UnifiedSearch(
            engine.platform, configurations=request.configurations,
            fisher_threshold=request.fisher_threshold, strategy=request.strategy,
            space=UnifiedSpaceConfig(seed=request.seed), seed=request.seed,
            engine=engine, observer=observer or self.observer,
            liar=request.liar, learner=request.learner,
            acquisition=request.acquisition, encoding=request.encoding)
        writer = None
        if checkpoint is not None:
            from repro.core.checkpoint import CheckpointWriter

            writer = CheckpointWriter(checkpoint, request.to_dict(), engine,
                                      interval_seconds=checkpoint_interval)
            engine.subscribe(writer.on_event)
            writer.write()  # the resume point exists before any tuning
        try:
            outcome = search.search(instance, images, labels,
                                    dataset.spec.image_shape)
        except BaseException as abort:
            # An aborted search (exception, SIGTERM/SIGINT translated to
            # one) still flushes everything paid for so far: the writer's
            # periodic saves are rate-limited, and resume must not lose
            # the tunings of the last interval.  A failing flush must not
            # mask the abort itself.
            if writer is not None:
                try:
                    writer.write()
                except ReproError as flush_error:
                    warnings.warn(
                        f"final checkpoint flush failed while the search was "
                        f"aborting ({abort!r}); resume falls back to the last "
                        f"periodic checkpoint: {flush_error}",
                        RuntimeWarning, stacklevel=2)
                finally:
                    engine.unsubscribe(writer.on_event)
                writer = None
            raise
        finally:
            if writer is not None:
                engine.unsubscribe(writer.on_event)
        if writer is not None:
            writer.write(completed=True)
        engine_statistics = dataclasses.asdict(engine.statistics)
        engine_statistics["latency_hit_rate"] = engine.statistics.latency_hit_rate
        return OptimizationResult.from_search(
            outcome, strategy=request.strategy, seed=request.seed,
            engine_statistics=engine_statistics, request=request)

    # ------------------------------------------------------------------
    def tune(self, shape: ConvolutionShape | Sequence[int],
             program: TransformProgram | str = "standard", *,
             platform: str | None = None,
             tuner_trials: int | None = None) -> TuningResult:
        """Auto-tune one convolution under one program; memoised per engine."""
        resolved_shape = resolve_shape(shape)
        resolved_program = resolve_program(program)
        engine = self.engine(platform, tuner_trials=tuner_trials)
        seconds = engine.tuned_latency(resolved_shape, resolved_program)
        return TuningResult(
            platform=engine.platform.name, shape=resolved_shape,
            program=resolved_program, latency_seconds=seconds,
            tuner_trials=engine.tuner_trials, seed=engine.seed)

    # ------------------------------------------------------------------
    def save_caches(self) -> list[Path]:
        """Write back every engine cache that has a persistence backend."""
        written = []
        for engine in self._engines.values():
            if engine.cache_store is not None or engine.cache_path is not None:
                written.append(engine.save_cache())
        return written

    def close(self) -> None:
        """Tear every engine down: persist dirty caches, stop worker pools.

        Idempotent.  Pools are shut down even when a cache write fails;
        the first write failure is re-raised after all engines closed.
        """
        engines, self._engines = self._engines, {}
        self._closed = True
        failures: list[Exception] = []
        for engine in engines.values():
            try:
                if engine.cache_store is not None or engine.cache_path is not None:
                    engine.save_cache()
            except Exception as exc:  # noqa: BLE001 - re-raised below
                failures.append(exc)
            finally:
                engine.close()
        if failures:
            raise failures[0]

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "OptimizationSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        try:
            self.close()
        except (ReproError, OSError) as close_error:
            # Pools are already shut down; a cache-write failure must not
            # mask the body's own exception mid-unwind.  On a clean exit
            # it is the caller's only signal, so let it propagate.
            if exc_type is None:
                raise
            warnings.warn(
                f"session close failed while the body was already raising; "
                f"the cache write-back error was suppressed so the original "
                f"exception propagates: {close_error}",
                RuntimeWarning, stacklevel=2)


# ---------------------------------------------------------------------------
# One-call helpers
# ---------------------------------------------------------------------------
def optimize(model: Module | str = "resnet34", *, platform: str = "cpu",
             strategy: str = "greedy", budget: int = 60, trials: int = 4,
             seed: int = 0, fisher_threshold: float = 1.0,
             width: float = 0.25, image_size: int = 16, fisher_batch: int = 4,
             learner: str = "ridge", acquisition: str = "rank",
             encoding: str = "flat",
             cache_dir: str | Path | None = None,
             observer: Observer | None = None,
             checkpoint: str | Path | None = None,
             checkpoint_interval: float = 0.0) -> OptimizationResult:
    """One-call façade over the unified search (the README example).

    Builds a session for the call, runs the search, and guarantees the
    engine teardown (cache write-back, pool shutdown) before returning.
    With ``checkpoint=``, the search persists its resume point after
    every tuning batch, so a killed run continues bit-identically with
    :func:`resume_checkpoint`.  ``learner``, ``acquisition`` and
    ``encoding`` pick the surrogate portfolio of the ``model_guided``
    strategy (see :mod:`repro.core.acquisition`); the defaults
    reproduce the historical behaviour exactly.

    Example::

        result = repro.optimize("resnet34", platform="cpu",
                                strategy="model_guided", budget=60)
        print(f"{result.speedup:.2f}x")
    """
    with OptimizationSession(platform, tuner_trials=trials, seed=seed,
                             cache_dir=cache_dir, observer=observer) as session:
        return session.optimize(model, strategy=strategy, budget=budget,
                                fisher_threshold=fisher_threshold,
                                width_multiplier=width, image_size=image_size,
                                fisher_batch=fisher_batch,
                                learner=learner, acquisition=acquisition,
                                encoding=encoding,
                                checkpoint=checkpoint,
                                checkpoint_interval=checkpoint_interval)


def resume_checkpoint(path: str | Path, *,
                      cache_dir: str | Path | None = None,
                      observer: Observer | None = None,
                      checkpoint: str | Path | None = None) -> OptimizationResult:
    """Continue a killed search from its checkpoint, bit-identically.

    Reads the checkpoint's request document and paid-for tuning entries,
    warms a fresh engine with them, and re-runs the request: every search
    strategy is a deterministic function of its seed given the engine's
    memoised oracles, so the replayed prefix hits the warm cache (no
    tuner work) and the run continues past the kill point exactly as the
    uninterrupted run would have.  Resuming a checkpoint of a *finished*
    search replays to the identical result almost instantly, so resume is
    safe to retry.  The resumed run keeps checkpointing to the same file
    (or to ``checkpoint=`` when given).

    Example::

        result = repro.resume_checkpoint("run.ckpt.json")
        print(f"{result.speedup:.2f}x")
    """
    from repro.core.checkpoint import read_checkpoint

    parsed = read_checkpoint(path)
    request = OptimizationRequest.from_dict(parsed.request_document)
    with OptimizationSession(request.platform,
                             tuner_trials=request.tuner_trials,
                             seed=request.seed, cache_dir=cache_dir,
                             observer=observer) as session:
        engine = session.engine(request.platform,
                                tuner_trials=request.tuner_trials,
                                seed=request.seed)
        engine.absorb_entries(parsed.entries)
        return session.optimize(
            request=request,
            checkpoint=Path(path) if checkpoint is None else checkpoint)


def tune(shape: ConvolutionShape | Sequence[int],
         program: TransformProgram | str = "standard", *, platform: str = "cpu",
         trials: int = 8, seed: int = 0,
         cache_dir: str | Path | None = None) -> TuningResult:
    """One-call façade over the auto-tuner for a single convolution.

    Example::

        tuned = repro.tune((64, 64, 16, 16, 3, 3), "seq1", platform="mgpu")
    """
    with OptimizationSession(platform, tuner_trials=trials, seed=seed,
                             cache_dir=cache_dir) as session:
        return session.tune(shape, program)


def list_platforms() -> dict[str, PlatformSpec]:
    """The deployment targets the library models, keyed by CLI name.

    Example::

        for name, spec in repro.list_platforms().items():
            print(name, spec.peak_gflops)
    """
    return dict(PLATFORMS)


def list_sequences() -> tuple[str, ...]:
    """Named transformation-sequence kinds accepted wherever programs go.

    Example::

        assert "seq1" in repro.list_sequences()
    """
    return tuple(SEQUENCE_KINDS)
