"""DenseNet models (Huang et al., 2017): DenseNet-161 / 169 / 201.

DenseNet relies heavily on 1x1 convolutions inside its dense layers, which
is why the paper includes it.  The variants differ in growth rate and the
number of layers per dense block.  ``depth_multiplier`` and
``width_multiplier`` scale the block depths / growth rate for NumPy-scale
runs while preserving the block/transition structure.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.nn.blocks import DenseBlock, TransitionLayer
from repro.nn.layers import BatchNorm2d, Conv2d, GlobalAvgPool2d, Linear
from repro.nn.module import Module
from repro.tensor.tensor import Tensor
from repro.utils import make_rng

#: (growth rate, per-block layer counts, initial channels) for each variant.
DENSENET_CONFIGS = {
    "densenet161": (48, (6, 12, 36, 24), 96),
    "densenet169": (32, (6, 12, 32, 32), 64),
    "densenet201": (32, (6, 12, 48, 32), 64),
}


class DenseNet(Module):
    """Densely connected convolutional network."""

    def __init__(self, variant: str = "densenet161", *, num_classes: int = 10,
                 width_multiplier: float = 1.0, depth_multiplier: float = 1.0,
                 compression: float = 0.5, rng: np.random.Generator | None = None):
        super().__init__()
        if variant not in DENSENET_CONFIGS:
            raise ModelError(f"unknown DenseNet variant '{variant}'")
        rng = rng or make_rng()
        self.variant = variant
        growth, block_layers, init_channels = DENSENET_CONFIGS[variant]
        growth = max(4, int(round(growth * width_multiplier)))
        growth -= growth % 2
        init_channels = max(8, int(round(init_channels * width_multiplier)))
        init_channels -= init_channels % 2
        block_layers = tuple(max(1, int(round(n * depth_multiplier))) for n in block_layers)
        self.growth_rate = growth
        self.block_layers = block_layers

        self.stem_conv = Conv2d(3, init_channels, 3, padding=1, rng=rng)
        self.stem_bn = BatchNorm2d(init_channels)

        channels = init_channels
        self.dense_blocks: list[DenseBlock] = []
        self.transitions: list[TransitionLayer | None] = []
        for index, layers in enumerate(block_layers):
            block = DenseBlock(layers, channels, growth, rng=rng)
            setattr(self, f"denseblock{index}", block)
            self.dense_blocks.append(block)
            channels = block.out_channels
            if index < len(block_layers) - 1:
                out_channels = max(2, int(channels * compression))
                out_channels -= out_channels % 2
                transition = TransitionLayer(channels, out_channels, rng=rng)
                setattr(self, f"transition{index}", transition)
                self.transitions.append(transition)
                channels = out_channels
            else:
                self.transitions.append(None)

        self.final_bn = BatchNorm2d(channels)
        self.pool = GlobalAvgPool2d()
        self.fc = Linear(channels, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        out = self.stem_bn(self.stem_conv(x)).relu()
        for block, transition in zip(self.dense_blocks, self.transitions):
            out = block(out)
            if transition is not None:
                out = transition(out)
        out = self.final_bn(out).relu()
        return self.fc(self.pool(out))


def densenet161(**kwargs) -> DenseNet:
    return DenseNet("densenet161", **kwargs)


def densenet169(**kwargs) -> DenseNet:
    return DenseNet("densenet169", **kwargs)


def densenet201(**kwargs) -> DenseNet:
    return DenseNet("densenet201", **kwargs)
