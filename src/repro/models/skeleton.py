"""NAS-Bench-201-style cell skeleton (Dong & Yang, 2020).

The paper's Figure 2 and Figure 3 use the NAS-Bench-201 design space: a
ResNet-like skeleton whose cells are DAGs of four nodes (A, B, C, D), with
each of the six forward edges carrying one of five operations::

    identity | zeroize | conv3x3 | conv1x1 | avgpool3x3

(the paper's Figure 2 lists identity, zeroize, conv3x3, conv1x1; NAS-Bench-201
adds 3x3 average pooling — we keep all five so the space has the exact
15625 = 5^6 cells the paper quotes).

:class:`Cell` instantiates one cell as a trainable module;
:class:`CellSkeleton` stacks cells with downsampling blocks in between,
mirroring the "5 cells in series" skeleton described in §3.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

import numpy as np

from repro.errors import ModelError
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    GlobalAvgPool2d,
    Identity,
    Linear,
    Zeroize,
)
from repro.nn.blocks import BasicResidualBlock
from repro.nn.module import Module, Sequential
from repro.tensor.tensor import Tensor
from repro.utils import make_rng

#: The five NAS-Bench-201 edge operations.
CELL_OPERATIONS: tuple[str, ...] = ("identity", "zeroize", "conv3x3", "conv1x1", "avgpool3x3")

#: Edges of the 4-node cell DAG: node j receives every node i < j.
CELL_EDGES: tuple[tuple[int, int], ...] = ((0, 1), (0, 2), (1, 2), (0, 3), (1, 3), (2, 3))


@dataclass(frozen=True)
class CellSpec:
    """An assignment of one operation to each of the six cell edges."""

    operations: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.operations) != len(CELL_EDGES):
            raise ModelError(
                f"a cell needs {len(CELL_EDGES)} edge operations, got {len(self.operations)}"
            )
        for op in self.operations:
            if op not in CELL_OPERATIONS:
                raise ModelError(f"unknown cell operation '{op}'")

    @property
    def index(self) -> int:
        """Position of this cell in the canonical enumeration of the space."""
        base = len(CELL_OPERATIONS)
        value = 0
        for op in self.operations:
            value = value * base + CELL_OPERATIONS.index(op)
        return value

    @classmethod
    def from_index(cls, index: int) -> "CellSpec":
        base = len(CELL_OPERATIONS)
        ops: list[str] = []
        for _ in range(len(CELL_EDGES)):
            ops.append(CELL_OPERATIONS[index % base])
            index //= base
        return cls(tuple(reversed(ops)))

    def describe(self) -> str:
        return "|".join(
            f"{src}->{dst}:{op}" for (src, dst), op in zip(CELL_EDGES, self.operations)
        )


def enumerate_cell_space() -> int:
    """Size of the full cell space (5 operations on 6 edges -> 15625)."""
    return len(CELL_OPERATIONS) ** len(CELL_EDGES)


def all_cell_specs():
    """Iterate over every cell in the space (15625 total)."""
    for ops in product(CELL_OPERATIONS, repeat=len(CELL_EDGES)):
        yield CellSpec(tuple(ops))


def _build_edge_op(op: str, channels: int, rng: np.random.Generator) -> Module:
    if op == "identity":
        return Identity()
    if op == "zeroize":
        return Zeroize()
    if op == "conv3x3":
        return Sequential(Conv2d(channels, channels, 3, padding=1, rng=rng),
                          BatchNorm2d(channels))
    if op == "conv1x1":
        return Sequential(Conv2d(channels, channels, 1, rng=rng), BatchNorm2d(channels))
    if op == "avgpool3x3":
        return AvgPool2d(3, stride=1, padding=1)
    raise ModelError(f"unknown cell operation '{op}'")


class Cell(Module):
    """One NAS-Bench-201 cell: 4 nodes, one operation per forward edge."""

    def __init__(self, spec: CellSpec, channels: int, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or make_rng()
        self.spec = spec
        self.channels = channels
        self.edge_ops: list[Module] = []
        for edge_index, op_name in enumerate(spec.operations):
            op = _build_edge_op(op_name, channels, rng)
            self.edge_ops.append(op)
            setattr(self, f"edge{edge_index}", op)

    def forward(self, x: Tensor) -> Tensor:
        nodes: list[Tensor | None] = [x, None, None, None]
        for (src, dst), op in zip(CELL_EDGES, self.edge_ops):
            contribution = op(nodes[src])
            if nodes[dst] is None:
                nodes[dst] = contribution
            else:
                nodes[dst] = nodes[dst] + contribution
        assert nodes[-1] is not None
        return nodes[-1].relu()


class CellSkeleton(Module):
    """ResNet-like skeleton with ``num_cells`` copies of one cell in series.

    Downsampling (spatial halving, channel doubling) happens between cells
    via residual reduction blocks, as described in §3.2 of the paper.
    """

    def __init__(self, spec: CellSpec, *, num_cells: int = 5, init_channels: int = 16,
                 num_classes: int = 10, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or make_rng()
        self.spec = spec
        self.stem = Sequential(Conv2d(3, init_channels, 3, padding=1, rng=rng),
                               BatchNorm2d(init_channels))
        stages: list[Module] = []
        channels = init_channels
        for index in range(num_cells):
            stages.append(Cell(spec, channels, rng=rng))
            if index in (num_cells // 3, 2 * num_cells // 3) and index > 0:
                reduction = BasicResidualBlock(channels, channels * 2, stride=2, rng=rng)
                stages.append(reduction)
                channels *= 2
        self.stages = stages
        for index, stage in enumerate(stages):
            setattr(self, f"stagemod{index}", stage)
        self.pool = GlobalAvgPool2d()
        self.fc = Linear(channels, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        out = self.stem(x).relu()
        for stage in self.stages:
            out = stage(out)
        return self.fc(self.pool(out))
