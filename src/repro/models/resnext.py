"""ResNeXt-29 (Xie et al., 2017), the grouped-convolution network of the paper.

The paper evaluates ResNeXt-29 (2x64d): 29 layers arranged as three stages
of three :class:`ResNeXtBlock` each, cardinality 2 and base width 64.  A
``width_multiplier`` scales the widths for small-substrate runs while
keeping the 3x3 stage structure.
"""

from __future__ import annotations

import numpy as np

from repro.nn.blocks import ResNeXtBlock
from repro.nn.layers import BatchNorm2d, Conv2d, GlobalAvgPool2d, Linear
from repro.nn.module import Module
from repro.tensor.tensor import Tensor
from repro.utils import make_rng


class ResNeXt(Module):
    """ResNeXt for CIFAR-sized inputs: 3 stages x ``blocks_per_stage`` blocks."""

    def __init__(self, *, cardinality: int = 2, base_width: int = 64,
                 blocks_per_stage: int = 3, num_classes: int = 10,
                 width_multiplier: float = 1.0, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or make_rng()
        self.cardinality = cardinality
        self.base_width = max(cardinality, int(round(base_width * width_multiplier)))
        widen_factor = 4
        stage_widths = [64 * widen_factor, 128 * widen_factor, 256 * widen_factor]
        stage_widths = [max(2 * cardinality, int(round(w * width_multiplier))) for w in stage_widths]
        stage_widths = [w - (w % (2 * cardinality)) for w in stage_widths]
        self.stage_widths = stage_widths

        stem_channels = max(8, int(round(64 * width_multiplier)))
        self.stem_conv = Conv2d(3, stem_channels, 3, padding=1, rng=rng)
        self.stem_bn = BatchNorm2d(stem_channels)

        blocks: list[ResNeXtBlock] = []
        in_channels = stem_channels
        for stage_index, out_channels in enumerate(stage_widths):
            for block_index in range(blocks_per_stage):
                stride = 2 if (stage_index > 0 and block_index == 0) else 1
                block = ResNeXtBlock(in_channels, out_channels, cardinality=cardinality,
                                     base_width=self.base_width, widen_factor=widen_factor,
                                     stride=stride, rng=rng)
                blocks.append(block)
                setattr(self, f"stage{stage_index}_block{block_index}", block)
                in_channels = out_channels
        self.blocks = blocks
        self.pool = GlobalAvgPool2d()
        self.fc = Linear(in_channels, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        out = self.stem_bn(self.stem_conv(x)).relu()
        for block in self.blocks:
            out = block(out)
        return self.fc(self.pool(out))


def resnext29_2x64d(**kwargs) -> ResNeXt:
    """The exact configuration evaluated in the paper (Figure 4b)."""
    kwargs.setdefault("cardinality", 2)
    kwargs.setdefault("base_width", 64)
    kwargs.setdefault("blocks_per_stage", 3)
    return ResNeXt(**kwargs)
