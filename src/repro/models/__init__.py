"""Model zoo: the networks evaluated in the paper."""

from repro.models.resnet import ResNet, resnet18, resnet34
from repro.models.resnext import ResNeXt, resnext29_2x64d
from repro.models.densenet import DenseNet, densenet161, densenet169, densenet201
from repro.models.skeleton import (
    CELL_EDGES,
    CELL_OPERATIONS,
    Cell,
    CellSkeleton,
    CellSpec,
    all_cell_specs,
    enumerate_cell_space,
)

__all__ = [
    "ResNet", "resnet18", "resnet34",
    "ResNeXt", "resnext29_2x64d",
    "DenseNet", "densenet161", "densenet169", "densenet201",
    "CELL_EDGES", "CELL_OPERATIONS", "Cell", "CellSkeleton", "CellSpec",
    "all_cell_specs", "enumerate_cell_space",
]
