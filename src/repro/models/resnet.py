"""ResNet models (He et al., 2016) used throughout the paper's evaluation.

ResNet-18 and ResNet-34 are built from :class:`BasicResidualBlock`.  The
constructors accept a ``width_multiplier`` and an ``input_size`` so the
experiment drivers can run a faithfully shaped but smaller instance on the
NumPy substrate (the block structure and layer counts are unchanged).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.nn.blocks import BasicResidualBlock
from repro.nn.layers import BatchNorm2d, Conv2d, GlobalAvgPool2d, Linear, MaxPool2d
from repro.nn.module import Module, Sequential
from repro.tensor.tensor import Tensor
from repro.utils import make_rng

#: Blocks per stage for each variant.
RESNET_STAGES = {
    "resnet18": (2, 2, 2, 2),
    "resnet34": (3, 4, 6, 3),
}

#: Base channel counts per stage (before width multiplication).
RESNET_CHANNELS = (64, 128, 256, 512)


class ResNet(Module):
    """Residual network with four stages of basic blocks."""

    def __init__(self, variant: str = "resnet34", *, num_classes: int = 10,
                 width_multiplier: float = 1.0, imagenet_stem: bool = False,
                 rng: np.random.Generator | None = None):
        super().__init__()
        if variant not in RESNET_STAGES:
            raise ModelError(f"unknown ResNet variant '{variant}'")
        rng = rng or make_rng()
        self.variant = variant
        self.num_classes = num_classes
        self.imagenet_stem = imagenet_stem

        channels = [max(8, int(round(c * width_multiplier))) for c in RESNET_CHANNELS]
        # Keep channel counts divisible by 8 so grouping factors 2/4/8 apply.
        channels = [c - (c % 8) if c >= 16 else c for c in channels]
        self.stage_channels = channels

        stem_channels = channels[0]
        if imagenet_stem:
            self.stem_conv = Conv2d(3, stem_channels, 7, stride=2, padding=3, rng=rng)
            self.stem_pool: Module | None = MaxPool2d(3, stride=2, padding=1)
        else:
            self.stem_conv = Conv2d(3, stem_channels, 3, stride=1, padding=1, rng=rng)
            self.stem_pool = None
        self.stem_bn = BatchNorm2d(stem_channels)

        blocks: list[BasicResidualBlock] = []
        in_channels = stem_channels
        for stage_index, (depth, out_channels) in enumerate(zip(RESNET_STAGES[variant], channels)):
            for block_index in range(depth):
                stride = 2 if (stage_index > 0 and block_index == 0) else 1
                block = BasicResidualBlock(in_channels, out_channels, stride=stride, rng=rng)
                blocks.append(block)
                setattr(self, f"stage{stage_index}_block{block_index}", block)
                in_channels = out_channels
        self.blocks = blocks
        self.pool = GlobalAvgPool2d()
        self.fc = Linear(in_channels, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        out = self.stem_bn(self.stem_conv(x)).relu()
        if self.stem_pool is not None:
            out = self.stem_pool(out)
        for block in self.blocks:
            out = block(out)
        return self.fc(self.pool(out))


def resnet18(**kwargs) -> ResNet:
    """ResNet-18 (used in the ImageNet study, Figure 8)."""
    return ResNet("resnet18", **kwargs)


def resnet34(**kwargs) -> ResNet:
    """ResNet-34 (the main CIFAR-10 and layer-wise study network)."""
    return ResNet("resnet34", **kwargs)
