"""Iteration domains: rectangular affine bounds over named iterators.

Tensor convolutions have static, convex, affine (in fact rectangular) loop
bounds, which is the property the paper exploits (§4).  A :class:`Domain`
is an ordered list of :class:`Iterator` with integer extents; the ordering
reflects the loop nest order before any schedule is applied.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Iterator as TypingIterator

from repro.errors import TransformError
from repro.utils import prod


@dataclass(frozen=True)
class Iterator:
    """A loop iterator ``lower <= name < lower + extent`` with unit stride."""

    name: str
    extent: int
    lower: int = 0

    def __post_init__(self) -> None:
        if self.extent <= 0:
            raise TransformError(f"iterator '{self.name}' must have positive extent")

    @property
    def upper(self) -> int:
        return self.lower + self.extent

    def with_extent(self, extent: int) -> "Iterator":
        return Iterator(self.name, extent, self.lower)

    def __str__(self) -> str:
        return f"{self.lower} <= {self.name} < {self.upper}"


@dataclass(frozen=True)
class Domain:
    """An ordered rectangular iteration domain."""

    iterators: tuple[Iterator, ...]

    @classmethod
    def of(cls, **extents: int) -> "Domain":
        """Build a domain from keyword extents, preserving keyword order."""
        return cls(tuple(Iterator(name, extent) for name, extent in extents.items()))

    # ------------------------------------------------------------------
    @property
    def names(self) -> tuple[str, ...]:
        return tuple(it.name for it in self.iterators)

    @property
    def rank(self) -> int:
        return len(self.iterators)

    def cardinality(self) -> int:
        """Number of statement instances in the domain."""
        return prod(it.extent for it in self.iterators)

    def extent(self, name: str) -> int:
        return self[name].extent

    def __getitem__(self, name: str) -> Iterator:
        for it in self.iterators:
            if it.name == name:
                return it
        raise TransformError(f"iterator '{name}' not in domain {self.names}")

    def __contains__(self, name: str) -> bool:
        return any(it.name == name for it in self.iterators)

    def index_of(self, name: str) -> int:
        for index, it in enumerate(self.iterators):
            if it.name == name:
                return index
        raise TransformError(f"iterator '{name}' not in domain {self.names}")

    # ------------------------------------------------------------------
    def points(self) -> TypingIterator[dict[str, int]]:
        """Enumerate every statement instance as an iterator-value mapping.

        Only used by tests and the reference interpreter on small domains.
        """
        ranges = [range(it.lower, it.upper) for it in self.iterators]
        for values in product(*ranges):
            yield dict(zip(self.names, values))

    # ------------------------------------------------------------------
    def replace(self, name: str, *replacements: Iterator) -> "Domain":
        """Replace one iterator with zero or more new iterators in place."""
        index = self.index_of(name)
        iterators = list(self.iterators)
        iterators[index:index + 1] = list(replacements)
        new_names = [it.name for it in iterators]
        if len(set(new_names)) != len(new_names):
            raise TransformError(f"duplicate iterator names after replace: {new_names}")
        return Domain(tuple(iterators))

    def reorder(self, order: list[str]) -> "Domain":
        if sorted(order) != sorted(self.names):
            raise TransformError(
                f"reorder {order} is not a permutation of domain iterators {self.names}"
            )
        return Domain(tuple(self[name] for name in order))

    def restrict(self, name: str, new_extent: int) -> "Domain":
        """Shrink one iterator's extent (the bottleneck transformation)."""
        if new_extent <= 0:
            raise TransformError("restricted extent must be positive")
        target = self[name]
        if new_extent > target.extent:
            raise TransformError(
                f"cannot restrict '{name}' from {target.extent} to larger extent {new_extent}"
            )
        return self.replace(name, target.with_extent(new_extent))

    def prepend(self, iterator: Iterator) -> "Domain":
        if iterator.name in self:
            raise TransformError(f"iterator '{iterator.name}' already in domain")
        return Domain((iterator,) + self.iterators)

    def drop(self, name: str) -> "Domain":
        index = self.index_of(name)
        return Domain(self.iterators[:index] + self.iterators[index + 1:])

    def __str__(self) -> str:
        return "{ " + " and ".join(str(it) for it in self.iterators) + " }"
