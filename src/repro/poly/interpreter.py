"""Reference interpreter for (possibly transformed) convolution statements.

The interpreter executes a :class:`~repro.poly.statement.Statement` point by
point over NumPy arrays.  It exists so the test suite can verify, by direct
execution, that

* classic program transformations preserve every computed value, and
* neural transformations (bottleneck, group, depthwise) change the values
  while remaining well-formed programs.

Only small extents are ever interpreted; performance estimation is the job
of :mod:`repro.hardware`, not of this interpreter.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TransformError
from repro.poly.statement import Statement


def _split_accesses(statement: Statement):
    if len(statement.writes) != 1:
        raise TransformError("the interpreter supports single-output statements only")
    output = statement.writes[0]
    operand_reads = [read for read in statement.reads if read.tensor != output.tensor]
    return output, operand_reads


def execute(statement: Statement, tensors: dict[str, np.ndarray],
            output_shape: tuple[int, ...]) -> np.ndarray:
    """Execute a multiply-accumulate statement and return its output tensor.

    ``tensors`` provides the read operands (e.g. ``{"W": ..., "I": ...}``).
    The output is zero-initialised, mirroring statement S1 of Algorithm 1.
    Out-of-bounds accesses caused by domain-shrinking transformations are a
    bug, so they raise rather than being clamped.
    """
    output_access, operand_reads = _split_accesses(statement)
    output = np.zeros(output_shape)
    for point in statement.domain.points():
        out_idx = output_access.indices(point)
        product = 1.0
        for read in operand_reads:
            idx = read.indices(point)
            product *= tensors[read.tensor][idx]
        output[out_idx] += product
    return output


def execute_reference_convolution(weights: np.ndarray, image: np.ndarray,
                                  stride: int = 1) -> np.ndarray:
    """Direct NumPy convolution used as the ground truth in tests.

    ``weights`` has shape (C_out, C_in, K_h, K_w); ``image`` has shape
    (C_in, H, W); output has shape (C_out, H_out, W_out) with no padding.
    """
    c_out, c_in, k_h, k_w = weights.shape
    _, h, w = image.shape
    h_out = (h - k_h) // stride + 1
    w_out = (w - k_w) // stride + 1
    output = np.zeros((c_out, h_out, w_out))
    for co in range(c_out):
        for oh in range(h_out):
            for ow in range(w_out):
                patch = image[:, oh * stride:oh * stride + k_h, ow * stride:ow * stride + k_w]
                output[co, oh, ow] = float((weights[co] * patch).sum())
    return output
