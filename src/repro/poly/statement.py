"""Statements, accesses and the polyhedral representation of a convolution.

This module provides the three components of the polyhedral model listed in
§4 of the paper — domain, accesses, schedule — packaged per statement, plus
:func:`convolution_nest`, the representation of the standard tensor
convolution (Algorithm 1 generalised to K_h x K_w kernels).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import TransformError
from repro.poly.affine import AffineExpr, AffineMap
from repro.poly.domain import Domain, Iterator


@dataclass(frozen=True)
class Access:
    """An affine memory access: ``tensor[ map(iterators) ]``."""

    tensor: str
    map: AffineMap
    is_write: bool = False

    def indices(self, values: dict[str, int]) -> tuple[int, ...]:
        return self.map.evaluate(values)

    def __str__(self) -> str:
        mode = "write" if self.is_write else "read"
        return f"{mode} {self.tensor}{self.map}"


@dataclass(frozen=True)
class Statement:
    """A statement with its domain, schedule and accesses.

    ``schedule`` maps domain iterators to logical time; the identity
    schedule executes the loop nest in its textual order.
    """

    name: str
    domain: Domain
    writes: tuple[Access, ...]
    reads: tuple[Access, ...]
    schedule: AffineMap

    @classmethod
    def create(cls, name: str, domain: Domain, writes: list[Access],
               reads: list[Access]) -> "Statement":
        return cls(name, domain, tuple(writes), tuple(reads),
                   AffineMap.identity(list(domain.names)))

    @property
    def accesses(self) -> tuple[Access, ...]:
        return self.writes + self.reads

    def with_domain(self, domain: Domain) -> "Statement":
        return replace(self, domain=domain)

    def with_schedule(self, schedule: AffineMap) -> "Statement":
        return replace(self, schedule=schedule)

    def with_accesses(self, writes: list[Access], reads: list[Access]) -> "Statement":
        return replace(self, writes=tuple(writes), reads=tuple(reads))

    def timestamp(self, values: dict[str, int]) -> tuple[int, ...]:
        return self.schedule.evaluate(values)

    def __str__(self) -> str:
        return f"{self.name}: {self.domain} schedule={self.schedule}"


@dataclass(frozen=True)
class ConvolutionShape:
    """Extents of the standard tensor-convolution loop nest.

    Example::

        shape = ConvolutionShape(c_out=64, c_in=64, h_out=16, w_out=16,
                                 k_h=3, k_w=3)
        print(shape.macs())
    """

    c_out: int
    c_in: int
    h_out: int
    w_out: int
    k_h: int
    k_w: int
    groups: int = 1
    stride: int = 1

    def __hash__(self) -> int:
        # Shapes are hashed once per engine-cache lookup; the store's
        # warm-start path interns a few hundred shape objects and hashes
        # each thousands of times, so the hash is memoised per instance.
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((self.c_out, self.c_in, self.h_out, self.w_out,
                           self.k_h, self.k_w, self.groups, self.stride))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __getstate__(self):
        # The memoised hash depends on PYTHONHASHSEED; never persist it.
        state = dict(self.__dict__)
        state.pop("_hash", None)
        return state

    def __setstate__(self, state):
        for key, value in state.items():
            object.__setattr__(self, key, value)

    def macs(self) -> int:
        """Multiply-accumulate count of the (possibly grouped) convolution."""
        return (self.c_out * (self.c_in // self.groups) * self.h_out * self.w_out
                * self.k_h * self.k_w)


#: Canonical iterator names, in the loop order of Figure 1 row 2.
CONV_ITERATORS = ("co", "ci", "oh", "ow", "kh", "kw")


def convolution_domain(shape: ConvolutionShape) -> Domain:
    """Domain of the multiply-accumulate statement of a standard convolution."""
    return Domain.of(co=shape.c_out, ci=shape.c_in, oh=shape.h_out, ow=shape.w_out,
                     kh=shape.k_h, kw=shape.k_w)


def convolution_nest(shape: ConvolutionShape) -> Statement:
    """The MAC statement S2 of Algorithm 1, generalised to KxK kernels.

    ``O[co][oh][ow] += W[co][ci][kh][kw] * I[ci][oh*stride+kh][ow*stride+kw]``
    """
    domain = convolution_domain(shape)
    output = Access("O", AffineMap((AffineExpr.var("co"), AffineExpr.var("oh"),
                                    AffineExpr.var("ow"))), is_write=True)
    weight = Access("W", AffineMap((AffineExpr.var("co"), AffineExpr.var("ci"),
                                    AffineExpr.var("kh"), AffineExpr.var("kw"))))
    image = Access("I", AffineMap((
        AffineExpr.var("ci"),
        AffineExpr.of({"oh": shape.stride, "kh": 1}),
        AffineExpr.of({"ow": shape.stride, "kw": 1}),
    )))
    # The reduction also reads the output it accumulates into.
    output_read = Access("O", output.map, is_write=False)
    return Statement.create("S_mac", domain, writes=[output], reads=[weight, image, output_read])


def init_statement(shape: ConvolutionShape) -> Statement:
    """The initialisation statement S1 of Algorithm 1 (``O[...] = 0``)."""
    domain = Domain.of(co=shape.c_out, oh=shape.h_out, ow=shape.w_out)
    output = Access("O", AffineMap((AffineExpr.var("co"), AffineExpr.var("oh"),
                                    AffineExpr.var("ow"))), is_write=True)
    return Statement.create("S_init", domain, writes=[output], reads=[])


def pointwise_convolution_nest(c_out: int, c_in: int, h: int, w: int) -> Statement:
    """The 1x1 convolution of Algorithm 1 (start of a residual block)."""
    return convolution_nest(ConvolutionShape(c_out, c_in, h, w, 1, 1))
