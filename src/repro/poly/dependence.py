"""Dependence analysis and the classic (semantics-preserving) legality check.

For the rectangular, affine loop nests of tensor convolutions, all data
dependences are *uniform*: pairs of statement instances touching the same
memory location differ by a constant distance vector.  §4.1 of the paper
states the classic legality condition — a transformed schedule is legal iff
every dependence's source still executes no later than its sink, i.e. every
transformed distance vector is lexicographically non-negative.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.poly.affine import AffineExpr
from repro.poly.domain import Domain
from repro.poly.statement import Access, Statement


@dataclass(frozen=True)
class DependenceVector:
    """A constant dependence distance in the statement's iterator basis."""

    distances: tuple[int, ...]
    tensor: str
    kind: str  # "flow", "anti", "output" or "reduction"

    def is_lexicographically_positive(self) -> bool:
        for value in self.distances:
            if value > 0:
                return True
            if value < 0:
                return False
        return False  # all zeros

    def is_lexicographically_non_negative(self) -> bool:
        for value in self.distances:
            if value > 0:
                return True
            if value < 0:
                return False
        return True

    def permute(self, order: list[int]) -> "DependenceVector":
        return DependenceVector(tuple(self.distances[i] for i in order), self.tensor, self.kind)


def _unit_vector(domain: Domain, name: str) -> tuple[int, ...]:
    return tuple(1 if it.name == name else 0 for it in domain.iterators)


def dependence_vectors(statement: Statement) -> list[DependenceVector]:
    """Compute the uniform dependence distance vectors of a statement.

    Two cases cover the convolution nests manipulated in this work:

    * A tensor that is both read and written with the *same* access map
      (the accumulator ``O``) carries a reduction dependence along every
      iterator that does not appear in that access map.
    * Accesses to the same tensor whose maps differ by a constant offset
      carry that constant distance (not exercised by the standard nest but
      kept for generality).
    """
    vectors: list[DependenceVector] = []
    domain = statement.domain
    writes = [acc for acc in statement.writes]
    reads = [acc for acc in statement.reads]

    for write in writes:
        matching_reads = [r for r in reads if r.tensor == write.tensor]
        for read in matching_reads:
            if read.map == write.map:
                # Reduction/accumulation: dependences along the missing iterators.
                used = set()
                for expr in write.map.exprs:
                    used.update(expr.variables)
                for iterator in domain.iterators:
                    if iterator.name not in used and iterator.extent > 1:
                        vectors.append(DependenceVector(
                            _unit_vector(domain, iterator.name), write.tensor, "reduction"))
            else:
                offset = _constant_offset(write, read, domain)
                if offset is not None and any(offset):
                    vectors.append(DependenceVector(offset, write.tensor, "flow"))
    return vectors


def _constant_offset(write: Access, read: Access, domain: Domain) -> tuple[int, ...] | None:
    """If ``write`` and ``read`` maps differ by constants only, return the
    per-iterator shift that aligns them; otherwise None."""
    if write.map.arity != read.map.arity:
        return None
    shift = {name: 0 for name in domain.names}
    for w_expr, r_expr in zip(write.map.exprs, read.map.exprs):
        if w_expr.coeffs != r_expr.coeffs:
            return None
        delta = r_expr.const - w_expr.const
        if delta == 0:
            continue
        # Attribute the constant difference to the single iterator of the
        # dimension when unambiguous; otherwise give up (non-uniform).
        variables = w_expr.variables
        if len(variables) != 1:
            return None
        name = variables[0]
        coeff = w_expr.coeff(name)
        if coeff == 0 or delta % coeff != 0:
            return None
        shift[name] = delta // coeff
    return tuple(shift[name] for name in domain.names)


def schedule_preserves_dependences(statement: Statement, new_order: list[str]) -> bool:
    """Classic legality: is executing the iterators in ``new_order`` legal?

    ``new_order`` must be a permutation of the statement's iterators.  The
    check permutes every dependence distance vector into the new order and
    requires it to stay lexicographically non-negative (definition §4.1).
    """
    domain = statement.domain
    order_indices = [domain.index_of(name) for name in new_order]
    for vector in dependence_vectors(statement):
        permuted = vector.permute(order_indices)
        if not permuted.is_lexicographically_non_negative():
            return False
    return True


def has_loop_carried_dependence(statement: Statement, iterator: str) -> bool:
    """True if some dependence is carried by ``iterator`` (distance != 0)."""
    domain = statement.domain
    index = domain.index_of(iterator)
    return any(vector.distances[index] != 0 for vector in dependence_vectors(statement))


def parallel_iterators(statement: Statement) -> list[str]:
    """Iterators that carry no dependence and can be run in parallel."""
    return [name for name in statement.domain.names
            if not has_loop_carried_dependence(statement, name)]
