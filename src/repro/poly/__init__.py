"""Polyhedral model of tensor convolutions (§4-§5.1 of the paper)."""

from repro.poly.affine import AffineExpr, AffineMap
from repro.poly.domain import Domain, Iterator
from repro.poly.statement import (
    CONV_ITERATORS,
    Access,
    ConvolutionShape,
    Statement,
    convolution_domain,
    convolution_nest,
    init_statement,
    pointwise_convolution_nest,
)
from repro.poly.dependence import (
    DependenceVector,
    dependence_vectors,
    has_loop_carried_dependence,
    parallel_iterators,
    schedule_preserves_dependences,
)
from repro.poly.transforms import (
    Bottleneck,
    Depthwise,
    Fuse,
    Group,
    Interchange,
    NeuralTransformation,
    Reorder,
    Reverse,
    StripMine,
    Tile,
    Transformation,
    apply_sequence,
)
from repro.poly.interpreter import execute, execute_reference_convolution

__all__ = [
    "AffineExpr", "AffineMap", "Domain", "Iterator",
    "CONV_ITERATORS", "Access", "ConvolutionShape", "Statement",
    "convolution_domain", "convolution_nest", "init_statement",
    "pointwise_convolution_nest",
    "DependenceVector", "dependence_vectors", "has_loop_carried_dependence",
    "parallel_iterators", "schedule_preserves_dependences",
    "Bottleneck", "Depthwise", "Fuse", "Group", "Interchange",
    "NeuralTransformation", "Reorder", "Reverse", "StripMine", "Tile",
    "Transformation", "apply_sequence",
    "execute", "execute_reference_convolution",
]
