"""Affine expressions and maps over named loop iterators.

The polyhedral model (§4 of the paper) describes statement domains,
memory accesses and schedules as affine functions of the surrounding loop
iterators.  :class:`AffineExpr` is a linear combination of iterator names
plus a constant; :class:`AffineMap` is a vector of such expressions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import TransformError


@dataclass(frozen=True)
class AffineExpr:
    """``sum(coeff[name] * name) + const`` over loop iterators."""

    coeffs: tuple[tuple[str, int], ...] = ()
    const: int = 0

    @classmethod
    def of(cls, coeffs: Mapping[str, int] | None = None, const: int = 0) -> "AffineExpr":
        items = tuple(sorted((name, int(c)) for name, c in (coeffs or {}).items() if c != 0))
        return cls(items, int(const))

    @classmethod
    def var(cls, name: str, coeff: int = 1) -> "AffineExpr":
        return cls.of({name: coeff})

    @classmethod
    def constant(cls, value: int) -> "AffineExpr":
        return cls.of({}, value)

    # ------------------------------------------------------------------
    def coeff(self, name: str) -> int:
        for var, value in self.coeffs:
            if var == name:
                return value
        return 0

    @property
    def variables(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.coeffs)

    def is_constant(self) -> bool:
        return not self.coeffs

    # ------------------------------------------------------------------
    def __add__(self, other: "AffineExpr | int") -> "AffineExpr":
        if isinstance(other, int):
            return AffineExpr(self.coeffs, self.const + other)
        merged = dict(self.coeffs)
        for name, value in other.coeffs:
            merged[name] = merged.get(name, 0) + value
        return AffineExpr.of(merged, self.const + other.const)

    def __mul__(self, scalar: int) -> "AffineExpr":
        return AffineExpr.of({name: value * scalar for name, value in self.coeffs},
                             self.const * scalar)

    def substitute(self, mapping: Mapping[str, "AffineExpr"]) -> "AffineExpr":
        """Replace iterators with affine expressions (used by strip-mining)."""
        if not any(name in mapping for name, _ in self.coeffs):
            # Substituting only identities is a no-op; expressions are
            # always normalised (built through ``of``), so reuse them.
            return self
        result = AffineExpr.constant(self.const)
        for name, value in self.coeffs:
            replacement = mapping.get(name, AffineExpr.var(name))
            result = result + replacement * value
        return result

    def rename(self, mapping: Mapping[str, str]) -> "AffineExpr":
        return AffineExpr.of(
            {mapping.get(name, name): value for name, value in self.coeffs}, self.const
        )

    def evaluate(self, values: Mapping[str, int]) -> int:
        total = self.const
        for name, coeff in self.coeffs:
            if name not in values:
                raise TransformError(f"iterator '{name}' has no value during evaluation")
            total += coeff * values[name]
        return total

    def __str__(self) -> str:
        parts = []
        for name, coeff in self.coeffs:
            if coeff == 1:
                parts.append(name)
            else:
                parts.append(f"{coeff}*{name}")
        if self.const or not parts:
            parts.append(str(self.const))
        return " + ".join(parts)


@dataclass(frozen=True)
class AffineMap:
    """A vector of affine expressions, e.g. an access function or schedule."""

    exprs: tuple[AffineExpr, ...]

    @classmethod
    def identity(cls, names: list[str]) -> "AffineMap":
        return cls(tuple(AffineExpr.var(name) for name in names))

    @classmethod
    def from_names(cls, names: list[str]) -> "AffineMap":
        return cls.identity(names)

    @property
    def arity(self) -> int:
        return len(self.exprs)

    def evaluate(self, values: Mapping[str, int]) -> tuple[int, ...]:
        return tuple(expr.evaluate(values) for expr in self.exprs)

    def substitute(self, mapping: Mapping[str, AffineExpr]) -> "AffineMap":
        exprs = tuple(expr.substitute(mapping) for expr in self.exprs)
        if all(new is old for new, old in zip(exprs, self.exprs)):
            return self
        return AffineMap(exprs)

    def rename(self, mapping: Mapping[str, str]) -> "AffineMap":
        return AffineMap(tuple(expr.rename(mapping) for expr in self.exprs))

    def permute(self, order: list[int]) -> "AffineMap":
        if sorted(order) != list(range(len(self.exprs))):
            raise TransformError(f"{order} is not a permutation of the map dimensions")
        return AffineMap(tuple(self.exprs[i] for i in order))

    def __str__(self) -> str:
        return "[" + ", ".join(str(e) for e in self.exprs) + "]"
