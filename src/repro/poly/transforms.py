"""Program transformations over convolution loop nests.

Classic transformations (interchange/reorder, strip-mine, tile, fuse,
reverse) preserve the computed values and are checked against data
dependences.  The neural transformations of §5.1 (bottleneck, group,
depthwise) deliberately change the computed values; their legality is
deferred to the Fisher-Potential check (``is_neural = True``).

Every transformation rewrites the statement's *domain* and *access maps*
so that the result is again a plain affine statement — strip-mining, for
example, replaces iterator ``ci`` with ``ci_o``/``ci_i`` and substitutes
``ci := factor * ci_o + ci_i`` into every access, which keeps schedules
affine instead of introducing div/mod.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import LegalityError, TransformError
from repro.poly.affine import AffineExpr, AffineMap
from repro.poly.dependence import schedule_preserves_dependences
from repro.poly.domain import Domain, Iterator
from repro.poly.statement import Access, Statement


@dataclass(frozen=True)
class Transformation:
    """Base class: a rewrite of a statement's loop nest."""

    #: True for the NAS transformations whose legality is representational.
    is_neural: bool = field(default=False, init=False, repr=False)

    @property
    def name(self) -> str:
        return type(self).__name__.lower()

    def applicable(self, statement: Statement) -> bool:
        """Cheap check whether the transformation can be constructed."""
        try:
            self.validate(statement)
            return True
        except TransformError:
            return False

    def validate(self, statement: Statement) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def apply(self, statement: Statement) -> Statement:  # pragma: no cover - overridden
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


def _rewrite_accesses(statement: Statement, mapping: dict[str, AffineExpr]) -> tuple[list[Access], list[Access]]:
    writes = [Access(a.tensor, a.map.substitute(mapping), True) for a in statement.writes]
    reads = [Access(a.tensor, a.map.substitute(mapping), False) for a in statement.reads]
    return writes, reads


# ---------------------------------------------------------------------------
# Classic, semantics-preserving transformations
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Interchange(Transformation):
    """Swap two loops in the nest (Table 1 ``reorder`` for a pair)."""

    first: str
    second: str

    def validate(self, statement: Statement) -> None:
        for name in (self.first, self.second):
            if name not in statement.domain:
                raise TransformError(f"interchange: iterator '{name}' not in nest")
        order = list(statement.domain.names)
        i, j = order.index(self.first), order.index(self.second)
        order[i], order[j] = order[j], order[i]
        if not schedule_preserves_dependences(statement, order):
            raise LegalityError(
                f"interchange({self.first},{self.second}) violates a data dependence",
                primitive="reorder", reason="violates a data dependence")

    def apply(self, statement: Statement) -> Statement:
        self.validate(statement)
        order = list(statement.domain.names)
        i, j = order.index(self.first), order.index(self.second)
        order[i], order[j] = order[j], order[i]
        return statement.with_domain(statement.domain.reorder(order)).with_schedule(
            AffineMap.identity(order))

    def describe(self) -> str:
        return f"interchange({self.first},{self.second})"


@dataclass(frozen=True)
class Reorder(Transformation):
    """Arbitrary permutation of the loop order (Table 1 ``reorder``)."""

    order: tuple[str, ...]

    def validate(self, statement: Statement) -> None:
        if sorted(self.order) != sorted(statement.domain.names):
            raise TransformError(
                f"reorder {self.order} is not a permutation of {statement.domain.names}")
        if not schedule_preserves_dependences(statement, list(self.order)):
            raise LegalityError(f"reorder{self.order} violates a data dependence",
                                primitive="reorder", reason="violates a data dependence")

    def apply(self, statement: Statement) -> Statement:
        self.validate(statement)
        order = list(self.order)
        return statement.with_domain(statement.domain.reorder(order)).with_schedule(
            AffineMap.identity(order))

    def describe(self) -> str:
        return f"reorder({','.join(self.order)})"


@dataclass(frozen=True)
class Reverse(Transformation):
    """Reverse one loop's iteration direction.

    Included to exercise the classic legality machinery: reversing a loop
    that carries a dependence is illegal, which the tests verify.
    """

    iterator: str

    def validate(self, statement: Statement) -> None:
        if self.iterator not in statement.domain:
            raise TransformError(f"reverse: iterator '{self.iterator}' not in nest")
        from repro.poly.dependence import has_loop_carried_dependence

        if has_loop_carried_dependence(statement, self.iterator):
            raise LegalityError(
                f"reverse({self.iterator}) inverts a loop-carried dependence",
                primitive="reverse", reason="inverts a loop-carried dependence")

    def apply(self, statement: Statement) -> Statement:
        self.validate(statement)
        extent = statement.domain.extent(self.iterator)
        mapping = {self.iterator: AffineExpr.of({self.iterator: -1}, extent - 1)}
        writes, reads = _rewrite_accesses(statement, mapping)
        return statement.with_accesses(writes, reads)

    def describe(self) -> str:
        return f"reverse({self.iterator})"


@dataclass(frozen=True)
class StripMine(Transformation):
    """Split one iterator into an outer/inner pair (Table 1 ``split``).

    ``iterator`` of extent ``N`` becomes ``iterator_o`` (extent ``N /
    factor``) and ``iterator_i`` (extent ``factor``), with
    ``iterator := factor * iterator_o + iterator_i`` substituted into all
    accesses.  Always legal.
    """

    iterator: str
    factor: int

    def validate(self, statement: Statement) -> None:
        if self.iterator not in statement.domain:
            raise TransformError(f"strip-mine: iterator '{self.iterator}' not in nest")
        extent = statement.domain.extent(self.iterator)
        if self.factor <= 0 or extent % self.factor != 0:
            raise TransformError(
                f"strip-mine factor {self.factor} does not divide extent {extent} of "
                f"'{self.iterator}'")

    def apply(self, statement: Statement) -> Statement:
        self.validate(statement)
        extent = statement.domain.extent(self.iterator)
        outer = Iterator(f"{self.iterator}_o", extent // self.factor)
        inner = Iterator(f"{self.iterator}_i", self.factor)
        domain = statement.domain.replace(self.iterator, outer, inner)
        mapping = {self.iterator: AffineExpr.of({outer.name: self.factor, inner.name: 1})}
        writes, reads = _rewrite_accesses(statement, mapping)
        return (statement.with_domain(domain)
                .with_accesses(writes, reads)
                .with_schedule(AffineMap.identity(list(domain.names))))

    def describe(self) -> str:
        return f"split({self.iterator},{self.factor})"


@dataclass(frozen=True)
class Tile(Transformation):
    """Strip-mine followed by hoisting the outer iterator to the front.

    This is the combined transformation described in §4 (strip-mining +
    interchange), i.e. cache/register blocking (Table 1 ``tile``).
    """

    iterator: str
    factor: int

    def validate(self, statement: Statement) -> None:
        StripMine(self.iterator, self.factor).validate(statement)

    def apply(self, statement: Statement) -> Statement:
        stripped = StripMine(self.iterator, self.factor).apply(statement)
        outer_name = f"{self.iterator}_o"
        order = [outer_name] + [n for n in stripped.domain.names if n != outer_name]
        if not schedule_preserves_dependences(stripped, order):
            raise LegalityError(f"tile({self.iterator},{self.factor}) violates a dependence",
                                primitive="tile", reason="violates a data dependence")
        return (stripped.with_domain(stripped.domain.reorder(order))
                .with_schedule(AffineMap.identity(order)))

    def describe(self) -> str:
        return f"tile({self.iterator},{self.factor})"


@dataclass(frozen=True)
class Fuse(Transformation):
    """Fuse two adjacent iterators into one (Table 1 ``fuse``).

    The two iterators must be adjacent in the loop order; the fused
    iterator has extent ``extent(first) * extent(second)`` and original
    iterators are recovered as ``first = fused / extent(second)``,
    ``second = fused mod extent(second)``.  Because accesses must stay
    affine, fusion is expressed by keeping the fused iterator and
    substituting ``first := 0`` shifts only when both accesses use the
    iterators linearly; in practice the convolution nests fuse iterators
    that appear in separate access dimensions, so we instead relabel the
    pair as a single iterator whose extent is the product and rewrite the
    accesses with the quotient/remainder decomposition folded into new
    iterator names.
    """

    first: str
    second: str

    def validate(self, statement: Statement) -> None:
        names = list(statement.domain.names)
        for name in (self.first, self.second):
            if name not in names:
                raise TransformError(f"fuse: iterator '{name}' not in nest")
        i, j = names.index(self.first), names.index(self.second)
        if j != i + 1:
            raise TransformError(
                f"fuse: iterators '{self.first}' and '{self.second}' must be adjacent")

    def apply(self, statement: Statement) -> Statement:
        """Fusion at this level is the inverse of strip-mining.

        The fused statement is represented with the pair replaced by a
        single iterator; accesses that referenced the inner iterator keep
        their stride through the substitution ``first -> fused // extent_i``
        which is affine only when the original pair came from a prior
        strip-mine.  We therefore only fuse pairs that the access maps use
        with the pattern ``first * extent(second) + second`` (or use each
        iterator independently), which covers the sequences explored in the
        paper (``fuse`` directly after ``split``/``interchange``).
        """
        self.validate(statement)
        extent_outer = statement.domain.extent(self.first)
        extent_inner = statement.domain.extent(self.second)
        fused_name = f"{self.first}{self.second}_f"
        fused = Iterator(fused_name, extent_outer * extent_inner)
        # first := fused // extent_inner, second := fused mod extent_inner.
        # To stay affine we verify every access uses the linear combination
        # first*extent_inner + second or a single one of the iterators with
        # the other absent; in the latter case the access becomes
        # non-affine, so we reject.
        combo_ok = True
        for access in statement.accesses:
            for expr in access.map.exprs:
                c_first = expr.coeff(self.first)
                c_second = expr.coeff(self.second)
                if c_first == 0 and c_second == 0:
                    continue
                if c_second != 0 and c_first == c_second * extent_inner:
                    continue
                if c_first == 0 and c_second != 0 and extent_outer == 1:
                    continue
                if c_second == 0 and c_first != 0 and extent_inner == 1:
                    continue
                combo_ok = False
        if not combo_ok:
            raise TransformError(
                f"fuse({self.first},{self.second}) would produce a non-affine access")
        domain = statement.domain.replace(self.first, fused).drop(self.second)
        mapping = {
            self.first: AffineExpr.constant(0),
            self.second: AffineExpr.var(fused_name),
        }
        writes, reads = _rewrite_accesses(statement, mapping)
        return (statement.with_domain(domain)
                .with_accesses(writes, reads)
                .with_schedule(AffineMap.identity(list(domain.names))))

    def describe(self) -> str:
        return f"fuse({self.first},{self.second})"


# ---------------------------------------------------------------------------
# Neural (representation-preserving, not semantics-preserving) transformations
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class NeuralTransformation(Transformation):
    """Base class for the §5.1 transformations checked by Fisher Potential."""

    is_neural: bool = field(default=True, init=False, repr=False)


@dataclass(frozen=True)
class Bottleneck(NeuralTransformation):
    """Shrink one iterator's extent by ``factor`` (§5.1 Bottlenecking).

    Applied to ``co`` this is classic output bottlenecking; applied to
    ``ci`` after an interchange it yields the input-channel bottlenecking of
    §2.3; applied to the spatial iterators it builds spatial bottlenecking
    (§5.3).
    """

    iterator: str
    factor: int

    def validate(self, statement: Statement) -> None:
        if self.iterator not in statement.domain:
            raise TransformError(f"bottleneck: iterator '{self.iterator}' not in nest")
        extent = statement.domain.extent(self.iterator)
        if self.factor <= 1:
            raise TransformError("bottleneck factor must be greater than 1")
        if extent % self.factor != 0:
            raise TransformError(
                f"bottleneck: factor {self.factor} does not divide extent {extent} "
                f"(constraint C (mod B) == 0)")

    def apply(self, statement: Statement) -> Statement:
        self.validate(statement)
        extent = statement.domain.extent(self.iterator)
        return statement.with_domain(
            statement.domain.restrict(self.iterator, extent // self.factor))

    def describe(self) -> str:
        return f"bottleneck({self.iterator},{self.factor})"


@dataclass(frozen=True)
class Group(NeuralTransformation):
    """Grouping (§5.1): tile ``co`` and ``ci`` by G and share the group index.

    The two outer iterators are tiled by a common factor and one of the new
    outer iterators is discarded; each group convolves only its own slice
    of the input and weights (Algorithm 2).
    """

    factor: int
    outer: str = "co"
    inner: str = "ci"

    def validate(self, statement: Statement) -> None:
        if self.factor <= 1:
            raise TransformError("group factor must be greater than 1")
        for name in (self.outer, self.inner):
            if name not in statement.domain:
                raise TransformError(f"group: iterator '{name}' not in nest")
            if statement.domain.extent(name) % self.factor != 0:
                raise TransformError(
                    f"group: factor {self.factor} does not divide extent of '{name}'")

    def apply(self, statement: Statement) -> Statement:
        self.validate(statement)
        domain = statement.domain
        outer_extent = domain.extent(self.outer) // self.factor
        inner_extent = domain.extent(self.inner) // self.factor
        group_it = Iterator("g", self.factor)
        outer_it = Iterator(f"{self.outer}_g", outer_extent)
        inner_it = Iterator(f"{self.inner}_g", inner_extent)
        new_domain = (domain.replace(self.outer, outer_it)
                      .replace(self.inner, inner_it)
                      .prepend(group_it))
        mapping = {
            self.outer: AffineExpr.of({"g": outer_extent, outer_it.name: 1}),
            self.inner: AffineExpr.of({"g": inner_extent, inner_it.name: 1}),
        }
        writes, reads = _rewrite_accesses(statement, mapping)
        return (statement.with_domain(new_domain)
                .with_accesses(writes, reads)
                .with_schedule(AffineMap.identity(list(new_domain.names))))

    def describe(self) -> str:
        return f"group({self.factor})"


@dataclass(frozen=True)
class Depthwise(NeuralTransformation):
    """Depthwise convolution (§5.1): grouping with G = C_o = C_i.

    Requires equal input and output channel extents; the strip counts of
    the inner pair collapse to 1 and the simplified nest of Algorithm 3
    remains.
    """

    outer: str = "co"
    inner: str = "ci"

    def validate(self, statement: Statement) -> None:
        for name in (self.outer, self.inner):
            if name not in statement.domain:
                raise TransformError(f"depthwise: iterator '{name}' not in nest")
        if statement.domain.extent(self.outer) != statement.domain.extent(self.inner):
            raise TransformError(
                "depthwise requires equal input and output channel counts "
                f"({statement.domain.extent(self.outer)} != {statement.domain.extent(self.inner)})")

    def apply(self, statement: Statement) -> Statement:
        self.validate(statement)
        factor = statement.domain.extent(self.outer)
        grouped = Group(factor, self.outer, self.inner).apply(statement)
        # The per-group extents are 1; drop the trivially sized iterators.
        domain = grouped.domain
        mapping: dict[str, AffineExpr] = {}
        for name in (f"{self.outer}_g", f"{self.inner}_g"):
            mapping[name] = AffineExpr.constant(0)
            domain = domain.drop(name)
        writes, reads = _rewrite_accesses(grouped, mapping)
        return (grouped.with_domain(domain)
                .with_accesses(writes, reads)
                .with_schedule(AffineMap.identity(list(domain.names))))

    def describe(self) -> str:
        return "depthwise()"


def apply_sequence(statement: Statement, transformations: Sequence[Transformation]) -> Statement:
    """Apply a sequence of transformations left to right."""
    for transformation in transformations:
        statement = transformation.apply(statement)
    return statement
