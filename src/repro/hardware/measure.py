"""Network-level "measurement": sum per-operator latency estimates.

This module plays the role of running a compiled model on the target and
timing it.  A network is a sequence of lowered operators; its latency is
the sum of per-operator estimates (the deployment targets in the paper run
operators sequentially) plus a small per-operator graph-runtime overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.hardware.cost_model import LatencyEstimate, estimate_latency_batch
from repro.hardware.platform import PlatformSpec
from repro.tenir.lower import LoweredNest

#: Graph-runtime bookkeeping per operator (memory planning, tensor handoff).
GRAPH_OVERHEAD_US = 1.0


@dataclass(frozen=True)
class NetworkMeasurement:
    """Latency of a whole network plus its per-layer breakdown."""

    platform: str
    total_seconds: float
    layer_estimates: tuple[LatencyEstimate, ...]
    layer_names: tuple[str, ...]

    @property
    def total_milliseconds(self) -> float:
        return self.total_seconds * 1e3

    def layer_seconds(self) -> list[float]:
        return [estimate.seconds for estimate in self.layer_estimates]

    def speedup_over(self, baseline: "NetworkMeasurement") -> float:
        """Speedup of ``baseline`` relative to this measurement (>1 = faster)."""
        return baseline.total_seconds / self.total_seconds


def measure_network(nests: Sequence[LoweredNest], platform: PlatformSpec) -> NetworkMeasurement:
    """Estimate end-to-end latency of a network of lowered operators."""
    estimates = estimate_latency_batch(nests, platform)
    overhead = GRAPH_OVERHEAD_US * 1e-6 * len(nests)
    total = sum(estimate.seconds for estimate in estimates) + overhead
    return NetworkMeasurement(
        platform=platform.name,
        total_seconds=total,
        layer_estimates=tuple(estimates),
        layer_names=tuple(nest.name for nest in nests),
    )


def speedup(baseline: NetworkMeasurement, optimized: NetworkMeasurement) -> float:
    """Speedup of ``optimized`` over ``baseline`` (the quantity in Figure 4)."""
    return baseline.total_seconds / optimized.total_seconds
