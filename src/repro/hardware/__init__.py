"""Analytic hardware platform models (the reproduction's "testbed")."""

from repro.hardware.platform import (
    ARM_A57,
    INTEL_I7,
    MAXWELL_MGPU,
    NVIDIA_1080TI,
    PLATFORMS,
    PlatformSpec,
    get_platform,
)
from repro.hardware.cost_model import (
    LatencyEstimate,
    estimate_dram_traffic,
    estimate_dram_traffic_batch,
    estimate_latency,
    estimate_latency_batch,
    estimate_roofline_bound,
)
from repro.hardware.measure import (
    GRAPH_OVERHEAD_US,
    NetworkMeasurement,
    measure_network,
    speedup,
)

__all__ = [
    "ARM_A57", "INTEL_I7", "MAXWELL_MGPU", "NVIDIA_1080TI", "PLATFORMS",
    "PlatformSpec", "get_platform",
    "LatencyEstimate", "estimate_dram_traffic", "estimate_dram_traffic_batch",
    "estimate_latency", "estimate_latency_batch", "estimate_roofline_bound",
    "GRAPH_OVERHEAD_US", "NetworkMeasurement", "measure_network", "speedup",
]
