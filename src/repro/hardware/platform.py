"""Analytic descriptions of the paper's four evaluation platforms.

The paper measures on an Intel Core i7 (CPU), an Nvidia GTX 1080Ti (GPU),
an ARM Cortex-A57 (mCPU) and the 128-core Maxwell mobile GPU of a Jetson
Nano (mGPU).  None of that hardware is available here, so each platform is
described by the parameters an analytic latency model needs: peak compute,
memory bandwidth, cache capacities, vector width, core/SM counts and
fixed overheads.  The absolute numbers are public datasheet figures; the
experiments only rely on the *relative* behaviour they induce.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PlatformError


@dataclass(frozen=True)
class PlatformSpec:
    """Parameters of one deployment target.

    Example::

        spec = get_platform("mgpu")
        print(spec.peak_gflops, spec.dram_bandwidth_gbs)
    """

    name: str
    kind: str                      # "cpu" or "gpu"
    peak_gflops: float             # single-precision peak, GFLOP/s
    dram_bandwidth_gbs: float      # GB/s
    cache_bytes: int               # last-level cache (CPU) or L2 (GPU)
    l1_bytes: int                  # per-core L1 (CPU) or shared/L1 per SM (GPU)
    cores: int                     # CPU cores or GPU SMs
    vector_width: int              # SIMD lanes (CPU) or warp size (GPU)
    threads_per_core: int          # max resident threads per SM (GPU) / SMT (CPU)
    launch_overhead_us: float      # per-operator fixed overhead
    frequency_ghz: float

    def __post_init__(self) -> None:
        if self.kind not in ("cpu", "gpu"):
            raise PlatformError(f"unknown platform kind '{self.kind}'")
        if self.peak_gflops <= 0 or self.dram_bandwidth_gbs <= 0:
            raise PlatformError("peak compute and bandwidth must be positive")

    @property
    def is_gpu(self) -> bool:
        return self.kind == "gpu"

    @property
    def peak_flops(self) -> float:
        return self.peak_gflops * 1e9

    @property
    def dram_bandwidth(self) -> float:
        return self.dram_bandwidth_gbs * 1e9

    @property
    def machine_balance(self) -> float:
        """FLOPs per byte at which the roofline knee sits."""
        return self.peak_flops / self.dram_bandwidth


#: Intel Core i7 (desktop, 6 cores, AVX2) — the paper's "CPU".
INTEL_I7 = PlatformSpec(
    name="cpu", kind="cpu", peak_gflops=460.0, dram_bandwidth_gbs=41.0,
    cache_bytes=12 * 1024 * 1024, l1_bytes=32 * 1024, cores=6, vector_width=8,
    threads_per_core=2, launch_overhead_us=2.0, frequency_ghz=3.7,
)

#: Nvidia GTX 1080Ti — the paper's "GPU".
NVIDIA_1080TI = PlatformSpec(
    name="gpu", kind="gpu", peak_gflops=11340.0, dram_bandwidth_gbs=484.0,
    cache_bytes=2816 * 1024, l1_bytes=96 * 1024, cores=28, vector_width=32,
    threads_per_core=2048, launch_overhead_us=8.0, frequency_ghz=1.58,
)

#: ARM Cortex-A57 (Jetson Nano CPU cluster) — the paper's "mCPU".
ARM_A57 = PlatformSpec(
    name="mcpu", kind="cpu", peak_gflops=28.0, dram_bandwidth_gbs=25.6,
    cache_bytes=2 * 1024 * 1024, l1_bytes=32 * 1024, cores=4, vector_width=4,
    threads_per_core=1, launch_overhead_us=4.0, frequency_ghz=1.43,
)

#: 128-core Maxwell mobile GPU (Jetson Nano) — the paper's "mGPU".
MAXWELL_MGPU = PlatformSpec(
    name="mgpu", kind="gpu", peak_gflops=472.0, dram_bandwidth_gbs=25.6,
    cache_bytes=256 * 1024, l1_bytes=48 * 1024, cores=1, vector_width=32,
    threads_per_core=2048, launch_overhead_us=15.0, frequency_ghz=0.92,
)

#: The four platforms of the evaluation, keyed by the names used in Figure 4.
PLATFORMS: dict[str, PlatformSpec] = {
    "cpu": INTEL_I7,
    "gpu": NVIDIA_1080TI,
    "mcpu": ARM_A57,
    "mgpu": MAXWELL_MGPU,
}


def get_platform(name: str) -> PlatformSpec:
    """Look a platform up by its Figure-4 name (cpu / gpu / mcpu / mgpu).

    Example::

        platform = get_platform("cpu")
    """
    try:
        return PLATFORMS[name.lower()]
    except KeyError as exc:
        raise PlatformError(
            f"unknown platform '{name}'; expected one of {sorted(PLATFORMS)}") from exc
