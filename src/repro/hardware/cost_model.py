"""Analytic latency model for lowered, scheduled loop nests.

The model combines three classic ingredients:

* a **roofline**: latency is at least compute-bound time and at least
  memory-bound time;
* a **cache-reuse traffic model**: the DRAM traffic of each tensor is the
  footprint of the deepest sub-nest that fits in the last-level cache,
  multiplied by the trip count of the loops outside that sub-nest that
  actually change the tensor's working set;
* **schedule-quality factors**: vectorization (innermost stride-1 access of
  sufficient extent), loop-overhead reduction from unrolling, multicore
  parallelisation (CPU), and thread-block mapping, occupancy and
  coalescing (GPU).

Absolute numbers are not the point (the paper's testbed is real hardware);
the model's job is to rank schedules and operators the way the hardware
would, which is what the search and all the figures rely on.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.hardware.platform import PlatformSpec
from repro.tenir.lower import LoweredAccess, LoweredLoop, LoweredNest
from repro.utils import prod


@dataclass(frozen=True)
class LatencyEstimate:
    """Latency breakdown for one operator on one platform."""

    seconds: float
    compute_seconds: float
    memory_seconds: float
    overhead_seconds: float
    dram_bytes: float
    flops: float
    vector_efficiency: float
    parallel_fraction: float
    details: dict[str, float] = field(default_factory=dict)

    @property
    def milliseconds(self) -> float:
        return self.seconds * 1e3

    @property
    def arithmetic_intensity(self) -> float:
        return self.flops / max(self.dram_bytes, 1.0)


# ---------------------------------------------------------------------------
# Traffic model
# ---------------------------------------------------------------------------
def _tensor_footprints(nest: LoweredNest, depth: int) -> dict[str, int]:
    """Unique elements touched per tensor by the sub-nest starting at ``depth``."""
    varying = nest.varying_iterators_from(depth)
    footprints: dict[str, int] = {}
    for access in nest.accesses:
        elements = access.footprint(varying)
        footprints[access.tensor] = max(footprints.get(access.tensor, 0), elements)
    return footprints


def _reuse_depth(nest: LoweredNest, cache_bytes: int) -> int:
    """Outermost loop depth whose sub-nest working set fits in the cache."""
    for depth in range(len(nest.loops) + 1):
        footprint = sum(_tensor_footprints(nest, depth).values()) * nest.element_bytes
        if footprint <= cache_bytes:
            return depth
    return len(nest.loops)


def estimate_dram_traffic(nest: LoweredNest, cache_bytes: int) -> float:
    """DRAM bytes moved by the nest under a shared cache of ``cache_bytes``."""
    depth = _reuse_depth(nest, cache_bytes)
    footprints = _tensor_footprints(nest, depth)
    outer_loops = nest.loops[:depth]
    traffic_bytes = 0.0
    for access in nest.accesses:
        footprint = footprints[access.tensor]
        # Only outer loops that change this tensor's working set force refetches.
        refetch = 1
        for loop in outer_loops:
            if access.stride_of(loop.name) != 0 or any(
                loop.name in coeffs for coeffs in access.dim_coefficients
            ):
                refetch *= loop.extent
        tensor_bytes = footprint * refetch * nest.element_bytes
        # Compulsory lower bound: the tensor must be read/written at least once.
        tensor_bytes = max(tensor_bytes, access.total_elements * nest.element_bytes)
        # Writes cost twice (write-allocate + write-back).
        if access.is_write:
            tensor_bytes *= 2
        traffic_bytes += tensor_bytes
    return traffic_bytes


def _vectorised_dram_traffic(nest: LoweredNest, cache_bytes: int) -> float:
    """DRAM traffic from the nest's precomputed locality arrays.

    Same quantity as :func:`estimate_dram_traffic`, computed over the
    memoised :class:`~repro.tenir.lower.NestTrafficArrays` instead of
    per-depth Python loops.  Every intermediate value is an exact integer
    in float64, so the result equals the scalar path bit for bit (pinned
    by the equivalence tests).
    """
    arrays = nest.traffic_arrays()
    fits = arrays.working_set_bytes <= cache_bytes
    depth = int(np.argmax(fits)) if fits.any() else len(nest.loops)
    per_access = arrays.tensor_footprints[depth] * arrays.refetch[depth] * nest.element_bytes
    per_access = np.maximum(per_access, arrays.compulsory_bytes)
    return float(np.sum(per_access * arrays.write_factor))


class _BatchWorkspace(threading.local):
    """Growable per-thread scratch buffers reused across batch calls.

    ``threading.local`` because ``estimate_latency_batch`` runs
    concurrently on the engine's thread pools; each thread keeps its own
    buffers and no call ever sees another call's scratch state.
    """

    def __init__(self) -> None:
        self._buffers: dict[str, np.ndarray] = {}

    def floats(self, name: str, size: int) -> np.ndarray:
        return self._get(name, size, np.float64)

    def iota(self, size: int) -> np.ndarray:
        """A reusable ``arange`` prefix (read-only by convention)."""
        buffer = self._buffers.get("iota")
        if buffer is None or buffer.size < size:
            buffer = np.arange(max(size, 1024), dtype=np.intp)
            self._buffers["iota"] = buffer
        return buffer[:size]

    def _get(self, name: str, size: int, dtype) -> np.ndarray:
        buffer = self._buffers.get(name)
        if buffer is None or buffer.size < size:
            capacity = max(size, 1024 if buffer is None else 2 * buffer.size)
            buffer = np.empty(capacity, dtype=dtype)
            self._buffers[name] = buffer
        return buffer[:size]


_WORKSPACE = _BatchWorkspace()


def estimate_dram_traffic_batch(nests: Sequence[LoweredNest],
                                cache_bytes: int) -> np.ndarray:
    """Per-nest DRAM traffic for a whole batch in a few numpy passes.

    Bit-identical to calling :func:`_vectorised_dram_traffic` (and hence
    :func:`estimate_dram_traffic`) on each nest, but with no per-candidate
    numpy dispatch: the per-depth working sets are scattered into one
    ``+inf``-padded matrix for a single batched reuse-depth ``argmax``,
    the per-access footprint/refetch rows at the chosen depths are
    gathered through flat indices, and the per-nest reductions run as one
    ``np.add.reduceat``.  ``reduceat`` sums strictly left-to-right, which
    matches ``np.sum``'s sequential kernel only below numpy's 8-element
    pairwise threshold — conv/dense nests have at most a handful of
    accesses, and any larger segment falls back to per-nest ``np.sum``.

    Scratch arrays come from a per-thread growable workspace, so a
    ``tune_many`` batch stream reuses the same buffers call after call.
    """
    count = len(nests)
    if count == 0:
        return np.empty(0, dtype=np.float64)
    arrays = [nest.traffic_arrays() for nest in nests]
    ws = _WORKSPACE

    depth_counts = np.fromiter((a.working_set_bytes.size for a in arrays),
                               dtype=np.intp, count=count)
    acc_counts = np.fromiter((a.compulsory_bytes.size for a in arrays),
                             dtype=np.intp, count=count)
    element_bytes = np.fromiter((nest.element_bytes for nest in nests),
                                dtype=np.float64, count=count)

    # Reuse-depth selection: scatter every nest's working-set vector into
    # one +inf-padded (count x max_depths) matrix; padding never "fits",
    # so a single row-wise argmax reproduces the scalar early-exit scan.
    total_depths = int(depth_counts.sum())
    depth_ends = np.cumsum(depth_counts)
    depth_rows = np.repeat(ws.iota(count), depth_counts)
    depth_cols = ws.iota(total_depths) - np.repeat(depth_ends - depth_counts,
                                                  depth_counts)
    max_depths = int(depth_counts.max())
    padded = ws.floats("working_sets", count * max_depths).reshape(count, max_depths)
    padded.fill(np.inf)
    np.concatenate([a.working_set_bytes for a in arrays],
                   out=ws.floats("ws_flat", total_depths))
    padded[depth_rows, depth_cols] = ws.floats("ws_flat", total_depths)
    fits = padded <= cache_bytes
    depth = np.where(fits.any(axis=1), np.argmax(fits, axis=1), depth_counts - 1)

    # Flat gather of the footprint/refetch rows at each nest's depth.
    total_acc = int(acc_counts.sum())
    acc_ends = np.cumsum(acc_counts)
    acc_starts = acc_ends - acc_counts
    matrix_sizes = depth_counts * acc_counts
    matrix_offsets = np.cumsum(matrix_sizes) - matrix_sizes
    local = ws.iota(total_acc) - np.repeat(acc_starts, acc_counts)
    select = np.repeat(matrix_offsets + depth * acc_counts, acc_counts) + local

    total_cells = int(matrix_sizes.sum())
    footprints = np.concatenate([a.tensor_footprints.ravel() for a in arrays],
                                out=ws.floats("footprints", total_cells))
    refetch = np.concatenate([a.refetch.ravel() for a in arrays],
                             out=ws.floats("refetch", total_cells))
    compulsory = np.concatenate([a.compulsory_bytes for a in arrays],
                                out=ws.floats("compulsory", total_acc))
    write_factor = np.concatenate([a.write_factor for a in arrays],
                                  out=ws.floats("write_factor", total_acc))

    per_access = ws.floats("per_access", total_acc)
    np.multiply(footprints[select], refetch[select], out=per_access)
    per_access *= np.repeat(element_bytes, acc_counts)
    np.maximum(per_access, compulsory, out=per_access)
    per_access *= write_factor

    traffic = np.empty(count, dtype=np.float64)
    if int(acc_counts.min()) > 0 and int(acc_counts.max()) < 8:
        np.add.reduceat(per_access, acc_starts, out=traffic)
    else:
        for index in range(count):
            traffic[index] = np.sum(per_access[acc_starts[index]:acc_ends[index]])
    return traffic


# ---------------------------------------------------------------------------
# Schedule-quality factors
# ---------------------------------------------------------------------------
def _innermost_vector_loop(nest: LoweredNest) -> LoweredLoop:
    for loop in reversed(nest.loops):
        if loop.annotation.vectorize:
            return loop
    return nest.loops[-1]


def _vector_efficiency(nest: LoweredNest, platform: PlatformSpec) -> float:
    """How well the innermost (or vectorized) loop uses the SIMD lanes."""
    loop = _innermost_vector_loop(nest)
    explicit = loop.annotation.vectorize
    width = platform.vector_width
    lane_fill = min(loop.extent, width) / width
    stride_quality = 0.0
    weights = 0.0
    for access in nest.accesses:
        weight = 2.0 if not access.is_write else 1.0
        stride = abs(access.stride_of(loop.name))
        if stride == 0:
            quality = 0.9   # broadcast: value kept in register
        elif stride == 1:
            quality = 1.0   # unit stride: vector load
        else:
            quality = max(1.0 / width, 1.0 / stride)  # gather-like access
        stride_quality += weight * quality
        weights += weight
    stride_quality /= max(weights, 1.0)
    efficiency = lane_fill * stride_quality
    if not explicit:
        efficiency *= 0.6   # auto-vectorisation is less reliable than explicit
    return max(efficiency, 1.0 / (2.0 * width))


def _instruction_efficiency(nest: LoweredNest) -> float:
    """Loop overhead reduction from unrolling the innermost loops."""
    innermost = nest.loops[-1]
    unroll = innermost.annotation.unroll
    for loop in reversed(nest.loops):
        unroll = max(unroll, loop.annotation.unroll)
    if unroll >= 8:
        return 1.0
    if unroll >= 4:
        return 0.95
    if unroll >= 2:
        return 0.9
    return 0.82


def _cpu_parallelism(nest: LoweredNest, platform: PlatformSpec) -> tuple[float, float]:
    """(cores used, efficiency) from ``parallel`` annotations."""
    parallel_iterations = 1
    for loop in nest.loops:
        if loop.annotation.parallel:
            parallel_iterations *= loop.extent
    if parallel_iterations <= 1:
        return 1.0, 1.0
    cores_used = min(platform.cores, parallel_iterations)
    # Load imbalance when the parallel iteration count does not divide cores.
    balance = parallel_iterations / (cores_used * -(-parallel_iterations // cores_used))
    return float(cores_used), 0.92 * balance


def _gpu_mapping(nest: LoweredNest, platform: PlatformSpec) -> tuple[float, float, float]:
    """(concurrency fraction, coalescing factor, mapping efficiency) for GPUs."""
    blocks = nest.bound_extent("blockIdx")
    threads_per_block = nest.bound_extent("threadIdx")
    vthreads = nest.bound_extent("vthread")
    explicit = blocks * threads_per_block > 1

    if not explicit:
        # Un-tuned mapping: the driver still launches something, but poorly.
        total_threads = min(prod(l.extent for l in nest.loops[:2]), 4096)
        concurrency = min(1.0, total_threads / (platform.cores * platform.threads_per_core))
        return max(concurrency, 1e-3) * 0.35, 0.5, 0.5

    total_threads = blocks * threads_per_block * max(vthreads, 1)
    capacity = platform.cores * platform.threads_per_core
    concurrency = min(1.0, total_threads / capacity)
    # Small blocks waste scheduler slots; very large blocks limit occupancy.
    if threads_per_block < platform.vector_width:
        block_quality = threads_per_block / platform.vector_width
    elif threads_per_block > 1024:
        block_quality = 0.6
    else:
        block_quality = 1.0

    # Coalescing: stride of the threadIdx.x-bound iterator in global accesses.
    thread_iter = None
    for loop in nest.loops:
        if loop.annotation.bind == "threadIdx.x":
            thread_iter = loop.name
            break
    if thread_iter is None:
        coalescing = 0.6
    else:
        qualities = []
        for access in nest.accesses:
            stride = abs(access.stride_of(thread_iter))
            if stride == 0:
                qualities.append(0.95)
            elif stride == 1:
                qualities.append(1.0)
            else:
                qualities.append(max(1.0 / platform.vector_width, 1.0 / stride))
        coalescing = sum(qualities) / len(qualities)

    return max(concurrency, 1e-3), coalescing, block_quality


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------
def estimate_latency(nest: LoweredNest, platform: PlatformSpec) -> LatencyEstimate:
    """Estimate the latency of one scheduled operator on one platform."""
    flops = 2.0 * nest.macs
    dram_bytes = estimate_dram_traffic(nest, platform.cache_bytes)
    overhead = platform.launch_overhead_us * 1e-6

    if platform.is_gpu:
        concurrency, coalescing, mapping_quality = _gpu_mapping(nest, platform)
        instr = _instruction_efficiency(nest)
        effective_flops = platform.peak_flops * concurrency * mapping_quality * instr
        compute_seconds = flops / max(effective_flops, 1.0)
        memory_seconds = dram_bytes / (platform.dram_bandwidth * coalescing)
        vector_eff = coalescing
        parallel_fraction = concurrency
    else:
        cores_used, parallel_eff = _cpu_parallelism(nest, platform)
        vector_eff = _vector_efficiency(nest, platform)
        instr = _instruction_efficiency(nest)
        per_core_peak = platform.peak_flops / platform.cores
        effective_flops = per_core_peak * cores_used * parallel_eff * vector_eff * instr
        compute_seconds = flops / max(effective_flops, 1.0)
        bandwidth_share = 0.55 + 0.45 * (cores_used / platform.cores)
        memory_seconds = dram_bytes / (platform.dram_bandwidth * bandwidth_share)
        parallel_fraction = cores_used / platform.cores

    seconds = max(compute_seconds, memory_seconds) + overhead
    return LatencyEstimate(
        seconds=seconds,
        compute_seconds=compute_seconds,
        memory_seconds=memory_seconds,
        overhead_seconds=overhead,
        dram_bytes=dram_bytes,
        flops=flops,
        vector_efficiency=vector_eff,
        parallel_fraction=parallel_fraction,
        details={"instruction_efficiency": _instruction_efficiency(nest)},
    )


def estimate_latency_batch(nests: Sequence[LoweredNest],
                           platform: PlatformSpec) -> list[LatencyEstimate]:
    """Batch form of :func:`estimate_latency`, vectorised with numpy.

    The per-nest quantities (flops, DRAM traffic from the memoised
    locality arrays, schedule-quality factors) are packed into arrays and
    the roofline combination runs once over the whole batch.  The scalar
    path is kept as the reference: for every nest the batch result equals
    ``estimate_latency(nest, platform)`` exactly — same IEEE operations in
    the same order — which the property tests pin.

    This is what the auto-tuner's fast path scores a whole trial
    generation with.
    """
    nests = list(nests)
    if not nests:
        return []
    count = len(nests)
    ws = _WORKSPACE
    flops = ws.floats("batch_flops", count)
    instr = ws.floats("batch_instr", count)
    factor_a = ws.floats("batch_factor_a", count)
    factor_b = ws.floats("batch_factor_b", count)
    factor_c = ws.floats("batch_factor_c", count)
    dram_bytes = estimate_dram_traffic_batch(nests, platform.cache_bytes)
    for index, nest in enumerate(nests):
        flops[index] = 2.0 * nest.macs
        instr[index] = _instruction_efficiency(nest)
        if platform.is_gpu:
            factor_a[index], factor_b[index], factor_c[index] = _gpu_mapping(nest, platform)
        else:
            factor_a[index], factor_b[index] = _cpu_parallelism(nest, platform)
            factor_c[index] = _vector_efficiency(nest, platform)
    overhead = platform.launch_overhead_us * 1e-6

    if platform.is_gpu:
        concurrency, coalescing, mapping_quality = factor_a, factor_b, factor_c
        effective_flops = platform.peak_flops * concurrency * mapping_quality * instr
        compute_seconds = flops / np.maximum(effective_flops, 1.0)
        memory_seconds = dram_bytes / (platform.dram_bandwidth * coalescing)
        vector_eff = coalescing
        parallel_fraction = concurrency
    else:
        cores_used, parallel_eff, vector_eff = factor_a, factor_b, factor_c
        per_core_peak = platform.peak_flops / platform.cores
        effective_flops = per_core_peak * cores_used * parallel_eff * vector_eff * instr
        compute_seconds = flops / np.maximum(effective_flops, 1.0)
        bandwidth_share = 0.55 + 0.45 * (cores_used / platform.cores)
        memory_seconds = dram_bytes / (platform.dram_bandwidth * bandwidth_share)
        parallel_fraction = cores_used / platform.cores

    seconds = np.maximum(compute_seconds, memory_seconds) + overhead
    return [
        LatencyEstimate(
            seconds=float(seconds[index]),
            compute_seconds=float(compute_seconds[index]),
            memory_seconds=float(memory_seconds[index]),
            overhead_seconds=overhead,
            dram_bytes=float(dram_bytes[index]),
            flops=float(flops[index]),
            vector_efficiency=float(vector_eff[index]),
            parallel_fraction=float(parallel_fraction[index]),
            details={"instruction_efficiency": float(instr[index])},
        )
        for index in range(count)
    ]


def estimate_roofline_bound(nest: LoweredNest, platform: PlatformSpec) -> float:
    """Idealised roofline lower bound (no schedule-quality penalties).

    Used by the cost-model ablation benchmark to show why the richer model
    is needed to separate schedules.
    """
    flops = 2.0 * nest.macs
    compulsory = nest.total_data_bytes()
    return max(flops / platform.peak_flops, compulsory / platform.dram_bandwidth)
