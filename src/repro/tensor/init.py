"""Weight initialisers used by the neural-network layers."""

from __future__ import annotations

import numpy as np

from repro.utils import make_rng, prod


def kaiming_normal(shape: tuple[int, ...], *, fan_in: int | None = None,
                   rng: np.random.Generator | None = None) -> np.ndarray:
    """He-normal initialisation suited to ReLU networks.

    ``fan_in`` defaults to the product of all but the first dimension, which
    matches the convention for both conv weights ``(C_out, C_in, KH, KW)``
    and linear weights ``(out, in)``.
    """
    rng = rng or make_rng()
    if fan_in is None:
        fan_in = prod(shape[1:]) if len(shape) > 1 else shape[0]
    std = np.sqrt(2.0 / max(fan_in, 1))
    return rng.normal(0.0, std, size=shape)


def xavier_uniform(shape: tuple[int, ...], *, rng: np.random.Generator | None = None) -> np.ndarray:
    """Glorot-uniform initialisation."""
    rng = rng or make_rng()
    fan_in = prod(shape[1:]) if len(shape) > 1 else shape[0]
    fan_out = shape[0]
    limit = np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-limit, limit, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    return np.ones(shape)
