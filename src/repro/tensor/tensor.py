"""A small tape-based autograd engine over NumPy arrays.

The :class:`Tensor` class wraps an ``np.ndarray`` and records the operations
applied to it on a tape (the reverse graph of parent tensors plus a backward
closure per node).  Calling :meth:`Tensor.backward` performs reverse-mode
differentiation over that tape.

The engine is intentionally small but complete enough to train the
convolutional networks used in the paper (ResNet, ResNeXt, DenseNet) and to
compute Fisher Potential, which requires gradients of the loss with respect
to intermediate convolution activations.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from repro.errors import AutogradError, ShapeError

ArrayLike = "np.ndarray | float | int | Sequence[float] | Tensor"


def _as_array(data, dtype=np.float64) -> np.ndarray:
    if isinstance(data, Tensor):
        return data.data
    return np.asarray(data, dtype=dtype)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` to undo NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were broadcast from size 1.
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """An n-dimensional array with reverse-mode automatic differentiation."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")
    __array_priority__ = 200  # ensure Tensor.__r*__ wins over ndarray ops

    def __init__(self, data, requires_grad: bool = False, name: str | None = None):
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad)
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the tape."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Tape construction
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: Iterable["Tensor"],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        parents = tuple(parents)
        requires_grad = any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires_grad)
        if requires_grad:
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if grad.shape != self.data.shape:
            grad = _unbroadcast(grad, self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        ``grad`` defaults to ones (only valid for scalar outputs, matching
        the usual loss.backward() idiom).
        """
        if not self.requires_grad:
            raise AutogradError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise AutogradError(
                    "backward() without an explicit gradient requires a scalar output, "
                    f"got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad)
            if grad.shape != self.data.shape:
                raise ShapeError(
                    f"gradient shape {grad.shape} does not match tensor shape {self.shape}"
                )

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is None or node.grad is None:
                continue
            node._backward(node.grad)

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other._accumulate(grad)

        return Tensor._make(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        data = -self.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._make(data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other._accumulate(-grad)

        return Tensor._make(data, (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        return Tensor(other) - self

    def __mul__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * other.data)
            other._accumulate(grad * self.data)

        return Tensor._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / other.data)
            other._accumulate(-grad * self.data / (other.data ** 2))

        return Tensor._make(data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise AutogradError("tensor exponents are not supported; use exp/log")
        data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            expanded = grad
            if axis is not None and not keepdims:
                expanded = np.expand_dims(grad, axis=axis)
            self._accumulate(np.broadcast_to(expanded, self.data.shape).copy())

        return Tensor._make(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = 1
            for ax in axes:
                count *= self.data.shape[ax]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            expanded = grad
            maxed = data
            if axis is not None and not keepdims:
                expanded = np.expand_dims(grad, axis=axis)
                maxed = np.expand_dims(data, axis=axis)
            mask = (self.data == maxed).astype(self.data.dtype)
            mask /= np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
            self._accumulate(mask * expanded)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(self.data.shape))

        return Tensor._make(data, (self,), backward)

    def transpose(self, axes: tuple[int, ...]) -> "Tensor":
        data = self.data.transpose(axes)
        inverse = tuple(np.argsort(axes))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return Tensor._make(data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Linear algebra and nonlinearities
    # ------------------------------------------------------------------
    def matmul(self, other: "Tensor") -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad @ np.swapaxes(other.data, -1, -2))
            other._accumulate(np.swapaxes(self.data, -1, -2) @ grad)

        return Tensor._make(data, (self, other), backward)

    __matmul__ = matmul

    def relu(self) -> "Tensor":
        mask = self.data > 0
        data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(data, (self,), backward)

    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * data)

        return Tensor._make(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor._make(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * 0.5 / np.maximum(data, 1e-12))

        return Tensor._make(data, (self,), backward)


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` (differentiable)."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = slice(start, stop)
            tensor._accumulate(grad[tuple(slicer)])

    return Tensor._make(data, tensors, backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis (differentiable)."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        slices = np.split(grad, len(tensors), axis=axis)
        for tensor, piece in zip(tensors, slices):
            tensor._accumulate(np.squeeze(piece, axis=axis))

    return Tensor._make(data, tensors, backward)


def pad2d(tensor: Tensor, padding: int) -> Tensor:
    """Zero-pad the last two (spatial) dimensions of an NCHW tensor."""
    if padding == 0:
        return tensor
    pad_width = [(0, 0)] * (tensor.ndim - 2) + [(padding, padding), (padding, padding)]
    data = np.pad(tensor.data, pad_width)

    def backward(grad: np.ndarray) -> None:
        slicer = tuple(
            slice(p[0], grad.shape[i] - p[1]) for i, p in enumerate(pad_width)
        )
        tensor._accumulate(grad[slicer])

    return Tensor._make(data, (tensor,), backward)
