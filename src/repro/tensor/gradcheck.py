"""Numerical gradient checking for the autograd engine.

Used by the test suite to validate every differentiable operation against a
central-difference approximation.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.tensor.tensor import Tensor


def numerical_gradient(fn: Callable[..., Tensor], inputs: Sequence[Tensor],
                       index: int, eps: float = 1e-5) -> np.ndarray:
    """Central-difference gradient of ``fn(*inputs).sum()`` w.r.t. one input."""
    target = inputs[index]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(fn(*inputs).data.sum())
        flat[i] = original - eps
        minus = float(fn(*inputs).data.sum())
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradients(fn: Callable[..., Tensor], inputs: Sequence[Tensor],
                    *, eps: float = 1e-5, atol: float = 1e-4, rtol: float = 1e-3) -> bool:
    """Compare autograd gradients of ``fn(*inputs).sum()`` against numerics.

    Returns True when every gradient matches; raises ``AssertionError`` with
    the offending input index otherwise (useful in tests).
    """
    for tensor in inputs:
        tensor.zero_grad()
    out = fn(*inputs)
    out.sum().backward()
    for index, tensor in enumerate(inputs):
        if not tensor.requires_grad:
            continue
        analytic = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        numeric = numerical_gradient(fn, inputs, index, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = float(np.max(np.abs(analytic - numeric)))
            raise AssertionError(
                f"gradient mismatch for input {index}: max abs diff {worst:.3e}"
            )
    return True
