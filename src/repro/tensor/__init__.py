"""Tape-based autograd tensor engine (NumPy substrate for PyTorch)."""

from repro.tensor.tensor import Tensor, concat, stack, pad2d
from repro.tensor.ops import (
    avg_pool2d,
    batch_norm2d,
    conv2d,
    conv_output_size,
    cross_entropy,
    dropout,
    global_avg_pool2d,
    im2col,
    col2im,
    linear,
    log_softmax,
    max_pool2d,
    softmax,
)
from repro.tensor.gradcheck import check_gradients, numerical_gradient
from repro.tensor import init

__all__ = [
    "Tensor",
    "concat",
    "stack",
    "pad2d",
    "avg_pool2d",
    "batch_norm2d",
    "conv2d",
    "conv_output_size",
    "cross_entropy",
    "dropout",
    "global_avg_pool2d",
    "im2col",
    "col2im",
    "linear",
    "log_softmax",
    "max_pool2d",
    "softmax",
    "check_gradients",
    "numerical_gradient",
    "init",
]
