"""Neural-network operations built on the autograd :class:`Tensor`.

The convolution family implemented here mirrors the operators discussed in
the paper (standard, grouped, bottlenecked and depthwise convolutions are
all expressed through :func:`conv2d` with appropriate ``groups`` and channel
counts).  Convolutions use im2col + matmul so that forward and backward
passes over the NumPy substrate stay fast enough for the experiments.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.tensor.tensor import Tensor, pad2d

__all__ = [
    "linear",
    "conv2d",
    "batch_norm2d",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "dropout",
    "upsample_nearest2d",
    "im2col",
    "col2im",
    "conv_output_size",
]


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    return (size + 2 * padding - kernel) // stride + 1


# ---------------------------------------------------------------------------
# im2col / col2im
# ---------------------------------------------------------------------------
def im2col(x: np.ndarray, kernel: tuple[int, int], stride: int, padding: int) -> np.ndarray:
    """Rearrange image patches into columns.

    Input ``x`` has shape ``(N, C, H, W)``; the result has shape
    ``(N, C, KH, KW, OH, OW)``.
    """
    n, c, h, w = x.shape
    kh, kw = kernel
    oh = conv_output_size(h, kh, stride, padding)
    ow = conv_output_size(w, kw, stride, padding)
    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    cols = np.empty((n, c, kh, kw, oh, ow), dtype=x.dtype)
    for i in range(kh):
        i_max = i + stride * oh
        for j in range(kw):
            j_max = j + stride * ow
            cols[:, :, i, j, :, :] = x[:, :, i:i_max:stride, j:j_max:stride]
    return cols


def col2im(cols: np.ndarray, input_shape: tuple[int, int, int, int],
           kernel: tuple[int, int], stride: int, padding: int) -> np.ndarray:
    """Inverse of :func:`im2col` (accumulating overlapping patches)."""
    n, c, h, w = input_shape
    kh, kw = kernel
    oh = conv_output_size(h, kh, stride, padding)
    ow = conv_output_size(w, kw, stride, padding)
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    for i in range(kh):
        i_max = i + stride * oh
        for j in range(kw):
            j_max = j + stride * ow
            padded[:, :, i:i_max:stride, j:j_max:stride] += cols[:, :, i, j, :, :]
    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


# ---------------------------------------------------------------------------
# Dense / linear
# ---------------------------------------------------------------------------
def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` for ``x`` of shape ``(N, in)``."""
    out = x @ weight.transpose((1, 0))
    if bias is not None:
        out = out + bias
    return out


# ---------------------------------------------------------------------------
# Convolution
# ---------------------------------------------------------------------------
def conv2d(x: Tensor, weight: Tensor, bias: Tensor | None = None, *,
           stride: int = 1, padding: int = 0, groups: int = 1) -> Tensor:
    """2-D convolution over NCHW input.

    ``weight`` has shape ``(C_out, C_in // groups, KH, KW)``.  Grouped and
    depthwise convolutions are expressed through ``groups``.
    """
    n, c_in, h, w = x.shape
    c_out, c_in_group, kh, kw = weight.shape
    if c_in % groups != 0 or c_out % groups != 0:
        raise ShapeError(
            f"channels ({c_in} in, {c_out} out) must be divisible by groups={groups}"
        )
    if c_in_group != c_in // groups:
        raise ShapeError(
            f"weight expects {c_in_group} input channels per group but input provides "
            f"{c_in // groups}"
        )

    oh = conv_output_size(h, kh, stride, padding)
    ow = conv_output_size(w, kw, stride, padding)

    cols = im2col(x.data, (kh, kw), stride, padding)  # (N, C, KH, KW, OH, OW)

    if groups == 1:
        cols_mat = cols.reshape(n, c_in * kh * kw, oh * ow)
        w_mat = weight.data.reshape(c_out, c_in * kh * kw)
        out_data = np.einsum("ok,nkp->nop", w_mat, cols_mat, optimize=True)
        out_data = out_data.reshape(n, c_out, oh, ow)
    else:
        cpg_in = c_in // groups
        cpg_out = c_out // groups
        cols_g = cols.reshape(n, groups, cpg_in * kh * kw, oh * ow)
        w_g = weight.data.reshape(groups, cpg_out, cpg_in * kh * kw)
        out_data = np.einsum("gok,ngkp->ngop", w_g, cols_g, optimize=True)
        out_data = out_data.reshape(n, c_out, oh, ow)

    if bias is not None:
        out_data = out_data + bias.data.reshape(1, c_out, 1, 1)
    parents = [x, weight] + ([bias] if bias is not None else [])

    def backward(grad: np.ndarray) -> None:
        grad = grad.reshape(n, c_out, oh, ow)
        if groups == 1:
            grad_mat = grad.reshape(n, c_out, oh * ow)
            cols_mat_local = cols.reshape(n, c_in * kh * kw, oh * ow)
            if weight.requires_grad:
                w_grad = np.einsum("nop,nkp->ok", grad_mat, cols_mat_local, optimize=True)
                weight._accumulate(w_grad.reshape(weight.shape))
            if x.requires_grad:
                w_mat_local = weight.data.reshape(c_out, c_in * kh * kw)
                cols_grad = np.einsum("ok,nop->nkp", w_mat_local, grad_mat, optimize=True)
                cols_grad = cols_grad.reshape(n, c_in, kh, kw, oh, ow)
                x._accumulate(col2im(cols_grad, x.shape, (kh, kw), stride, padding))
        else:
            cpg_in = c_in // groups
            cpg_out = c_out // groups
            grad_g = grad.reshape(n, groups, cpg_out, oh * ow)
            cols_g_local = cols.reshape(n, groups, cpg_in * kh * kw, oh * ow)
            if weight.requires_grad:
                w_grad = np.einsum("ngop,ngkp->gok", grad_g, cols_g_local, optimize=True)
                weight._accumulate(w_grad.reshape(weight.shape))
            if x.requires_grad:
                w_g_local = weight.data.reshape(groups, cpg_out, cpg_in * kh * kw)
                cols_grad = np.einsum("gok,ngop->ngkp", w_g_local, grad_g, optimize=True)
                cols_grad = cols_grad.reshape(n, c_in, kh, kw, oh, ow)
                x._accumulate(col2im(cols_grad, x.shape, (kh, kw), stride, padding))
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2, 3)))

    return Tensor._make(out_data, parents, backward)


# ---------------------------------------------------------------------------
# Normalisation
# ---------------------------------------------------------------------------
def batch_norm2d(x: Tensor, gamma: Tensor, beta: Tensor, running_mean: np.ndarray,
                 running_var: np.ndarray, *, training: bool, momentum: float = 0.1,
                 eps: float = 1e-5) -> Tensor:
    """Batch normalisation over the channel dimension of NCHW input.

    ``running_mean`` / ``running_var`` are plain arrays updated in place when
    ``training`` is true (matching the usual framework semantics).
    """
    n, c, h, w = x.shape
    if training:
        mean = x.data.mean(axis=(0, 2, 3))
        var = x.data.var(axis=(0, 2, 3))
        running_mean *= 1.0 - momentum
        running_mean += momentum * mean
        running_var *= 1.0 - momentum
        running_var += momentum * var
    else:
        mean = running_mean
        var = running_var

    mean_b = mean.reshape(1, c, 1, 1)
    inv_std = 1.0 / np.sqrt(var.reshape(1, c, 1, 1) + eps)
    x_hat = (x.data - mean_b) * inv_std
    out_data = gamma.data.reshape(1, c, 1, 1) * x_hat + beta.data.reshape(1, c, 1, 1)

    def backward(grad: np.ndarray) -> None:
        if gamma.requires_grad:
            gamma._accumulate((grad * x_hat).sum(axis=(0, 2, 3)))
        if beta.requires_grad:
            beta._accumulate(grad.sum(axis=(0, 2, 3)))
        if x.requires_grad:
            g = gamma.data.reshape(1, c, 1, 1)
            if training:
                m = n * h * w
                dx_hat = grad * g
                term1 = dx_hat
                term2 = dx_hat.mean(axis=(0, 2, 3), keepdims=True)
                term3 = x_hat * (dx_hat * x_hat).mean(axis=(0, 2, 3), keepdims=True)
                x._accumulate(inv_std * (term1 - term2 - term3))
            else:
                x._accumulate(grad * g * inv_std)

    return Tensor._make(out_data, (x, gamma, beta), backward)


# ---------------------------------------------------------------------------
# Pooling
# ---------------------------------------------------------------------------
def max_pool2d(x: Tensor, kernel: int, stride: int | None = None, padding: int = 0) -> Tensor:
    """Max pooling over NCHW input."""
    stride = stride or kernel
    n, c, h, w = x.shape
    cols = im2col(x.data, (kernel, kernel), stride, padding)  # (N, C, K, K, OH, OW)
    oh, ow = cols.shape[-2:]
    cols_flat = cols.reshape(n, c, kernel * kernel, oh, ow)
    arg = cols_flat.argmax(axis=2)
    out_data = np.take_along_axis(cols_flat, arg[:, :, None], axis=2).squeeze(axis=2)

    def backward(grad: np.ndarray) -> None:
        cols_grad = np.zeros_like(cols_flat)
        np.put_along_axis(cols_grad, arg[:, :, None], grad[:, :, None], axis=2)
        cols_grad = cols_grad.reshape(n, c, kernel, kernel, oh, ow)
        x._accumulate(col2im(cols_grad, x.shape, (kernel, kernel), stride, padding))

    return Tensor._make(out_data, (x,), backward)


def avg_pool2d(x: Tensor, kernel: int, stride: int | None = None, padding: int = 0) -> Tensor:
    """Average pooling over NCHW input."""
    stride = stride or kernel
    n, c, h, w = x.shape
    cols = im2col(x.data, (kernel, kernel), stride, padding)
    oh, ow = cols.shape[-2:]
    out_data = cols.mean(axis=(2, 3))

    def backward(grad: np.ndarray) -> None:
        expand = np.broadcast_to(
            grad[:, :, None, None, :, :] / (kernel * kernel),
            (n, c, kernel, kernel, oh, ow),
        ).copy()
        x._accumulate(col2im(expand, x.shape, (kernel, kernel), stride, padding))

    return Tensor._make(out_data, (x,), backward)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Average over all spatial positions, returning shape ``(N, C)``."""
    return x.mean(axis=(2, 3))


# ---------------------------------------------------------------------------
# Classification heads
# ---------------------------------------------------------------------------
def softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy between logits ``(N, K)`` and integer labels ``(N,)``."""
    labels = np.asarray(labels)
    if logits.ndim != 2:
        raise ShapeError(f"cross_entropy expects (N, K) logits, got {logits.shape}")
    n = logits.shape[0]
    log_probs = log_softmax(logits, axis=1)
    picked = log_probs[np.arange(n), labels]
    return -picked.mean()


def upsample_nearest2d(x: Tensor, factor: int) -> Tensor:
    """Nearest-neighbour upsampling of NCHW input by an integer factor.

    Used by the spatial-bottleneck operator: a spatially bottlenecked
    convolution computes outputs on a coarser grid and upsamples back.
    """
    if factor == 1:
        return x
    n, c, h, w = x.shape
    data = np.repeat(np.repeat(x.data, factor, axis=2), factor, axis=3)

    def backward(grad: np.ndarray) -> None:
        reshaped = grad.reshape(n, c, h, factor, w, factor)
        x._accumulate(reshaped.sum(axis=(3, 5)))

    return Tensor._make(data, (x,), backward)


def dropout(x: Tensor, rate: float, rng: np.random.Generator, training: bool) -> Tensor:
    """Inverted dropout."""
    if not training or rate <= 0.0:
        return x
    mask = (rng.random(x.shape) >= rate) / (1.0 - rate)
    return x * Tensor(mask)
