"""The NAS-Bench-201-style cell search space (paper §3.2, Figure 2/3).

The space has exactly ``5^6 = 15625`` cells: four nodes, six forward edges,
five candidate operations per edge.  This module provides sampling and
enumeration utilities over the space plus the proxy evaluation (short
training on synthetic CIFAR) used to reproduce Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data import SyntheticImageDataset, test_loader, train_loader
from repro.models.skeleton import (
    CELL_EDGES,
    CELL_OPERATIONS,
    CellSkeleton,
    CellSpec,
    enumerate_cell_space,
)
from repro.nn.trainer import proxy_fit
from repro.utils import make_rng


@dataclass(frozen=True)
class CellEvaluation:
    """Proxy-training outcome for one cell."""

    spec: CellSpec
    fisher_potential: float
    final_error: float
    parameters: int


def space_size() -> int:
    """15625 for the standard 4-node / 5-operation space."""
    return enumerate_cell_space()


def sample_cells(count: int, seed: int | None = None) -> list[CellSpec]:
    """Sample ``count`` distinct cells uniformly from the space."""
    rng = make_rng(seed)
    total = space_size()
    count = min(count, total)
    indices = rng.choice(total, size=count, replace=False)
    return [CellSpec.from_index(int(index)) for index in indices]


def conv_heavy_cells(count: int, seed: int | None = None) -> list[CellSpec]:
    """Sample cells biased towards convolution edges (denser networks)."""
    rng = make_rng(seed)
    cells = []
    conv_ops = ("conv3x3", "conv1x1")
    for _ in range(count):
        ops = []
        for _ in CELL_EDGES:
            if rng.random() < 0.6:
                ops.append(conv_ops[int(rng.integers(0, len(conv_ops)))])
            else:
                ops.append(CELL_OPERATIONS[int(rng.integers(0, len(CELL_OPERATIONS)))])
        cells.append(CellSpec(tuple(ops)))
    return cells


def build_cell_model(spec: CellSpec, *, num_cells: int = 3, init_channels: int = 8,
                     num_classes: int = 10, seed: int | None = None) -> CellSkeleton:
    """Instantiate a cell into the ResNet-like skeleton."""
    return CellSkeleton(spec, num_cells=num_cells, init_channels=init_channels,
                        num_classes=num_classes, rng=make_rng(seed))


def evaluate_cell(spec: CellSpec, dataset: SyntheticImageDataset, *,
                  epochs: int = 2, batch_size: int = 32, num_cells: int = 3,
                  init_channels: int = 8, seed: int | None = None) -> CellEvaluation:
    """Proxy-train one cell and report its final error and Fisher Potential.

    This is the workhorse of the Figure 3 reproduction: Fisher Potential is
    computed at initialisation on a single random minibatch; final error
    comes from the short proxy training run.
    """
    from repro.fisher import network_fisher_potential

    model = build_cell_model(spec, num_cells=num_cells, init_channels=init_channels,
                             num_classes=dataset.spec.num_classes, seed=seed)
    images, labels = dataset.random_minibatch(batch_size, seed=seed)
    potential = network_fisher_potential(model, images, labels)
    result = proxy_fit(model, train_loader(dataset, batch_size=batch_size, seed=seed),
                       test_loader(dataset), epochs=epochs)
    return CellEvaluation(
        spec=spec,
        fisher_potential=potential,
        final_error=result.final_error,
        parameters=model.num_parameters(),
    )
