"""Random architecture search baseline.

Random search over a constrained space is known to be a competitive NAS
baseline (§8 of the paper cites Li & Talwalkar).  This implementation
samples random candidate assignments for the replaceable convolutions,
filters them with Fisher Potential and keeps the assignment with the
lowest estimated latency.  It is used by tests and the search-strategy
ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ModelError, SearchError
from repro.fisher import FisherLegalityChecker, candidate_layer_fisher, fisher_profile
from repro.hardware.platform import PlatformSpec
from repro.nas.blockswap import _candidate_kinds_for
from repro.nas.fbnet import _candidate_latency
from repro.nn.blocks import iter_replaceable_convs
from repro.nn.convs import CANDIDATE_KINDS, build_candidate
from repro.nn.layers import Conv2d
from repro.nn.module import Module
from repro.utils import make_rng


@dataclass(frozen=True)
class RandomSearchCandidate:
    """One sampled assignment with its scores."""

    assignment: dict[str, str]
    legal: bool
    fisher_potential: float
    latency_seconds: float


@dataclass
class RandomSearchResult:
    best: RandomSearchCandidate | None = None
    candidates_evaluated: int = 0
    candidates_rejected: int = 0
    history: list[RandomSearchCandidate] = field(default_factory=list)

    @property
    def rejection_rate(self) -> float:
        if not self.candidates_evaluated:
            return 0.0
        return self.candidates_rejected / self.candidates_evaluated


class RandomNASSearch:
    """Sample assignments, reject by Fisher, rank by estimated latency."""

    def __init__(self, platform: PlatformSpec, *, samples: int = 20,
                 substitution_probability: float = 0.5,
                 candidate_kinds: tuple[str, ...] = CANDIDATE_KINDS,
                 seed: int | None = None):
        if samples < 1:
            raise SearchError("random search needs at least one sample")
        self.platform = platform
        self.samples = samples
        self.substitution_probability = substitution_probability
        self.candidate_kinds = candidate_kinds
        self.seed = seed

    def search(self, model: Module, images: np.ndarray, labels: np.ndarray,
               input_hw: tuple[int, int]) -> RandomSearchResult:
        rng = make_rng(self.seed)
        profile = fisher_profile(model, images, labels)
        checker = FisherLegalityChecker(profile)
        layers = [(name, conv) for name, _owner, conv in iter_replaceable_convs(model)
                  if isinstance(conv, Conv2d) and name in profile.layers]
        if not layers:
            raise SearchError("the model exposes no replaceable convolutions")

        latency_cache: dict[tuple[str, str], float] = {}
        score_cache: dict[tuple[str, str], float] = {}

        def layer_latency(name: str, conv: Conv2d, kind: str) -> float:
            key = (name, kind)
            if key not in latency_cache:
                latency_cache[key] = _candidate_latency(kind, conv, input_hw, self.platform)
            return latency_cache[key]

        def layer_score(name: str, conv: Conv2d, kind: str) -> float:
            key = (name, kind)
            if key not in score_cache:
                if kind == "standard":
                    score_cache[key] = profile.score_of(name)
                else:
                    candidate = build_candidate(kind, conv.in_channels, conv.out_channels,
                                                conv.kernel_size, stride=conv.stride,
                                                padding=conv.padding, rng=make_rng(0))
                    try:
                        score_cache[key] = candidate_layer_fisher(profile.layers[name], candidate)
                    except ModelError:
                        score_cache[key] = -np.inf
            return score_cache[key]

        result = RandomSearchResult()
        for _ in range(self.samples):
            assignment: dict[str, str] = {}
            replacements: dict[str, float] = {}
            latency = 0.0
            for name, conv in layers:
                kinds = _candidate_kinds_for(conv, self.candidate_kinds)
                if kinds and rng.random() < self.substitution_probability:
                    kind = str(rng.choice(kinds))
                else:
                    kind = "standard"
                assignment[name] = kind
                score = layer_score(name, conv, kind)
                if kind != "standard":
                    replacements[name] = score
                latency += layer_latency(name, conv, kind)
            decision = checker.check_layer_scores(replacements)
            candidate = RandomSearchCandidate(
                assignment=assignment, legal=decision.legal,
                fisher_potential=decision.candidate_potential, latency_seconds=latency)
            result.history.append(candidate)
            result.candidates_evaluated += 1
            if not decision.legal:
                result.candidates_rejected += 1
                continue
            if result.best is None or candidate.latency_seconds < result.best.latency_seconds:
                result.best = candidate
        return result
