"""BlockSwap (Turner et al., ICLR 2020): the paper's "NAS" baseline.

BlockSwap compresses a network by substituting its convolution blocks with
cheaper alternatives from a fixed candidate list, choosing the substitution
pattern whose Fisher Potential at initialisation is highest under a
parameter budget.  The paper compiles the BlockSwap-compressed network with
TVM default schedules and labels the result "NAS" in Figures 4, 6 and 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ModelError, SearchError
from repro.fisher import FisherProfile, candidate_layer_fisher, fisher_profile
from repro.nn.blocks import iter_replaceable_convs
from repro.nn.convs import CANDIDATE_KINDS, build_candidate
from repro.nn.layers import Conv2d
from repro.nn.module import Module
from repro.utils import make_rng


def substitution_program(kind: str):
    """The NAS candidate ``kind`` as a unified-IR transform program.

    Every operator in BlockSwap's fixed candidate list is a point in the
    unified space, so its substitutions can be re-expressed — and re-tuned,
    counted or interpolated — as :class:`~repro.core.program.TransformProgram`
    values, the same object the unified search manipulates.
    """
    from repro.core.sequences import predefined_program

    mapping = {
        "standard": ("standard", {}),
        "group2": ("group", {"group": 2}),
        "group4": ("group", {"group": 4}),
        "bottleneck2": ("bottleneck", {"bottleneck": 2}),
        "bottleneck4": ("bottleneck", {"bottleneck": 4}),
        "depthwise": ("depthwise", {}),
        "spatial2": ("spatial_bottleneck", {"spatial": 2}),
    }
    if kind not in mapping:
        raise SearchError(f"NAS candidate kind '{kind}' has no program equivalent")
    name, params = mapping[kind]
    return predefined_program(name, **params)


@dataclass(frozen=True)
class BlockSubstitution:
    """One chosen substitution: which conv becomes which candidate."""

    layer: str
    kind: str
    original_parameters: int
    candidate_parameters: int
    fisher_score: float

    @property
    def parameter_saving(self) -> int:
        return self.original_parameters - self.candidate_parameters

    @property
    def program(self):
        """This substitution as a unified-IR transform program."""
        return substitution_program(self.kind)


@dataclass
class BlockSwapResult:
    """The compressed model plus the substitution plan that produced it."""

    model: Module
    substitutions: list[BlockSubstitution] = field(default_factory=list)
    original_parameters: int = 0
    compressed_parameters: int = 0
    fisher_potential: float = 0.0

    @property
    def compression_ratio(self) -> float:
        if self.compressed_parameters == 0:
            return 1.0
        return self.original_parameters / self.compressed_parameters

    def plan(self) -> dict[str, str]:
        return {sub.layer: sub.kind for sub in self.substitutions}

    def as_programs(self) -> dict:
        """The substitution plan in the unified sequence IR (layer -> program)."""
        return {sub.layer: sub.program for sub in self.substitutions}


def _candidate_kinds_for(conv: Conv2d, kinds: tuple[str, ...]) -> list[str]:
    """Filter candidate kinds to those whose channel constraints are met."""
    if conv.groups > 1:
        # Already-grouped convolutions (ResNeXt) are outside the candidate list.
        return []
    usable = []
    for kind in kinds:
        if kind == "standard":
            continue
        if kind.startswith("group"):
            factor = int(kind[len("group"):])
            if conv.in_channels % factor or conv.out_channels % factor:
                continue
        if kind.startswith("bottleneck"):
            factor = int(kind[len("bottleneck"):])
            if conv.out_channels % factor:
                continue
        if kind == "depthwise" and conv.in_channels < 2:
            continue
        if kind == "spatial2" and conv.kernel_size < 2:
            continue
        usable.append(kind)
    return usable


class BlockSwap:
    """Fisher-guided block substitution under a parameter budget."""

    def __init__(self, *, budget_ratio: float = 0.5,
                 candidate_kinds: tuple[str, ...] = CANDIDATE_KINDS,
                 seed: int | None = None):
        if not 0.0 < budget_ratio <= 1.0:
            raise SearchError("budget_ratio must be in (0, 1]")
        self.budget_ratio = budget_ratio
        self.candidate_kinds = candidate_kinds
        self.seed = seed

    def compress(self, model: Module, images: np.ndarray, labels: np.ndarray) -> BlockSwapResult:
        """Substitute blocks in place until the parameter budget is met.

        The substitution order follows Fisher sensitivity: the least
        sensitive convolutions (lowest layer Fisher score) are replaced
        first, each with the cheapest candidate whose local Fisher score is
        the highest among the shape-compatible options.
        """
        rng = make_rng(self.seed)
        profile = fisher_profile(model, images, labels)
        original_parameters = model.num_parameters()
        budget = int(original_parameters * self.budget_ratio)

        replaceable = iter_replaceable_convs(model)
        name_to_entry = {name: (owner, conv) for name, owner, conv in replaceable
                         if isinstance(conv, Conv2d)}
        # Least sensitive first.
        ordered = sorted(
            (name for name in name_to_entry if name in profile.layers),
            key=lambda name: profile.score_of(name),
        )

        result = BlockSwapResult(model=model, original_parameters=original_parameters)
        current_parameters = original_parameters
        for name in ordered:
            if current_parameters <= budget:
                break
            owner, conv = name_to_entry[name]
            record = profile.layers[name]
            kinds = _candidate_kinds_for(conv, self.candidate_kinds)
            if not kinds:
                continue
            best_kind, best_candidate, best_score = None, None, -np.inf
            for kind in kinds:
                candidate = build_candidate(
                    kind, conv.in_channels, conv.out_channels, conv.kernel_size,
                    stride=conv.stride, padding=conv.padding,
                    rng=make_rng(int(rng.integers(0, 2 ** 31))),
                )
                if candidate.num_parameters() >= conv.num_parameters():
                    continue
                try:
                    score = candidate_layer_fisher(record, candidate)
                except ModelError:
                    continue  # shape-incompatible candidate (e.g. odd spatial size)
                if score > best_score:
                    best_kind, best_candidate, best_score = kind, candidate, score
            if best_candidate is None:
                continue
            attribute = name.split(".")[-1]
            setattr(owner, attribute, best_candidate)
            saving = conv.num_parameters() - best_candidate.num_parameters()
            current_parameters -= saving
            result.substitutions.append(BlockSubstitution(
                layer=name, kind=best_kind,
                original_parameters=conv.num_parameters(),
                candidate_parameters=best_candidate.num_parameters(),
                fisher_score=best_score,
            ))

        result.compressed_parameters = model.num_parameters()
        final_profile = fisher_profile(model, images, labels)
        result.fisher_potential = final_profile.total
        return result
