"""NAS baselines: the NAS-Bench-201-style space, BlockSwap, FBNet, random search."""

from repro.nas.space import (
    CellEvaluation,
    build_cell_model,
    conv_heavy_cells,
    evaluate_cell,
    sample_cells,
    space_size,
)
from repro.nas.blockswap import BlockSubstitution, BlockSwap, BlockSwapResult
from repro.nas.fbnet import FBNetResult, FBNetSearch, MixedOp
from repro.nas.random_search import (
    RandomNASSearch,
    RandomSearchCandidate,
    RandomSearchResult,
)

__all__ = [
    "CellEvaluation", "build_cell_model", "conv_heavy_cells", "evaluate_cell",
    "sample_cells", "space_size",
    "BlockSubstitution", "BlockSwap", "BlockSwapResult",
    "FBNetResult", "FBNetSearch", "MixedOp",
    "RandomNASSearch", "RandomSearchCandidate", "RandomSearchResult",
]
