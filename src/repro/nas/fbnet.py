"""FBNet-like differentiable NAS baseline (§7.5, Figure 7).

The paper re-implements FBNet using the convolutional blocks of its NAS
candidate space and its three baseline networks as skeletons.  We do the
same: every replaceable convolution becomes a :class:`MixedOp` holding all
shape-compatible candidates; a softmax over per-layer architecture logits
weights the candidate outputs; the training loss is cross-entropy plus a
latency penalty computed from the analytic cost model.  After supernet
training the argmax candidate is selected per layer.

This captures the two properties the paper contrasts against: FBNet needs
(proxy) training to make decisions, and it can only choose from the
pre-designed candidate list.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data import DataLoader
from repro.errors import ModelError, SearchError
from repro.hardware.platform import PlatformSpec
from repro.nas.blockswap import _candidate_kinds_for
from repro.nn.blocks import iter_replaceable_convs
from repro.nn.convs import CANDIDATE_KINDS, build_candidate
from repro.nn.layers import Conv2d
from repro.nn.module import Module, Parameter
from repro.nn.optim import SGD
from repro.tensor import ops
from repro.tensor.tensor import Tensor, stack
from repro.utils import make_rng


def _candidate_latency(kind: str, conv: Conv2d, input_hw: tuple[int, int],
                       platform: PlatformSpec) -> float:
    """Analytic latency of one candidate operator for the latency penalty."""
    from repro.poly.statement import ConvolutionShape
    from repro.tenir.autotune import AutoTuner
    from repro.tenir.expr import conv2d_compute, grouped_conv2d_compute

    spec = conv.workload(input_hw)
    shape = ConvolutionShape(
        c_out=spec["c_out"], c_in=spec["c_in"], h_out=spec["h_out"], w_out=spec["w_out"],
        k_h=spec["k_h"], k_w=spec["k_w"], stride=spec["stride"],
    )
    tuner = AutoTuner(trials=4, seed=0)
    if kind.startswith("group"):
        computation = grouped_conv2d_compute(shape, int(kind[len("group"):]))
    elif kind.startswith("bottleneck"):
        factor = int(kind[len("bottleneck"):])
        reduced = ConvolutionShape(shape.c_out // factor, shape.c_in, shape.h_out,
                                   shape.w_out, shape.k_h, shape.k_w, stride=shape.stride)
        computation = conv2d_compute(reduced)
    elif kind == "depthwise":
        depth = ConvolutionShape(shape.c_in, shape.c_in, shape.h_out, shape.w_out,
                                 shape.k_h, shape.k_w, groups=shape.c_in, stride=shape.stride)
        computation = grouped_conv2d_compute(depth, depth.c_in)
    elif kind == "spatial2":
        reduced = ConvolutionShape(shape.c_out, shape.c_in, max(shape.h_out // 2, 1),
                                   max(shape.w_out // 2, 1), shape.k_h, shape.k_w,
                                   stride=shape.stride)
        computation = conv2d_compute(reduced)
    else:
        computation = conv2d_compute(shape)
    return tuner.tune(computation, platform).seconds


class MixedOp(Module):
    """Weighted mixture of candidate operators with learnable logits."""

    def __init__(self, conv: Conv2d, kinds: list[str], latencies: list[float],
                 rng: np.random.Generator | None = None):
        super().__init__()
        if not kinds:
            raise ModelError("a MixedOp needs at least one candidate")
        rng = rng or make_rng()
        self.kinds = kinds
        self.latencies = np.asarray(latencies)
        self.alpha = Parameter(np.zeros(len(kinds)))
        self.candidates = []
        for index, kind in enumerate(kinds):
            candidate = build_candidate(kind, conv.in_channels, conv.out_channels,
                                        conv.kernel_size, stride=conv.stride,
                                        padding=conv.padding,
                                        rng=make_rng(int(rng.integers(0, 2 ** 31))))
            self.candidates.append(candidate)
            setattr(self, f"candidate{index}", candidate)

    def weights(self) -> Tensor:
        return ops.softmax(self.alpha.reshape(1, -1), axis=1).reshape(-1)

    def forward(self, x: Tensor) -> Tensor:
        weights = self.weights()
        outputs = [candidate(x) for candidate in self.candidates]
        stacked = stack(outputs, axis=0)                      # (K, N, C, H, W)
        weighted = stacked * weights.reshape(-1, 1, 1, 1, 1)
        return weighted.sum(axis=0)

    def expected_latency(self) -> Tensor:
        return (self.weights() * Tensor(self.latencies)).sum()

    def best_kind(self) -> str:
        return self.kinds[int(np.argmax(self.alpha.data))]


@dataclass
class FBNetResult:
    """Per-layer selections of the FBNet-like search."""

    selections: dict[str, str] = field(default_factory=dict)
    expected_latency_seconds: float = 0.0
    supernet_parameters: int = 0
    epochs_trained: int = 0

    def plan(self) -> dict[str, str]:
        return dict(self.selections)


class FBNetSearch:
    """Differentiable operator selection with a latency-aware loss."""

    def __init__(self, platform: PlatformSpec, *, latency_weight: float = 0.2,
                 epochs: int = 2, lr: float = 0.05,
                 candidate_kinds: tuple[str, ...] = CANDIDATE_KINDS,
                 seed: int | None = None):
        if epochs < 1:
            raise SearchError("FBNet needs at least one supernet training epoch")
        self.platform = platform
        self.latency_weight = latency_weight
        self.epochs = epochs
        self.lr = lr
        self.candidate_kinds = candidate_kinds
        self.seed = seed

    # ------------------------------------------------------------------
    def build_supernet(self, model: Module, input_hw: tuple[int, int]) -> dict[str, MixedOp]:
        """Replace every compatible convolution with a MixedOp, in place."""
        rng = make_rng(self.seed)
        mixed_ops: dict[str, MixedOp] = {}
        for name, owner, conv in iter_replaceable_convs(model):
            if not isinstance(conv, Conv2d):
                continue
            kinds = ["standard"] + _candidate_kinds_for(conv, self.candidate_kinds)
            kinds = [k for k in kinds if k != "spatial2"]  # shape-fragile in mixtures
            latencies = [_candidate_latency(kind, conv, input_hw, self.platform)
                         for kind in kinds]
            mixed = MixedOp(conv, kinds, latencies, rng=rng)
            setattr(owner, name.split(".")[-1], mixed)
            mixed_ops[name] = mixed
        if not mixed_ops:
            raise SearchError("the model exposes no replaceable convolutions")
        return mixed_ops

    def search(self, model: Module, loader: DataLoader,
               input_hw: tuple[int, int]) -> FBNetResult:
        """Train the supernet briefly and read off per-layer selections."""
        mixed_ops = self.build_supernet(model, input_hw)
        optimizer = SGD(model.parameters(), lr=self.lr, momentum=0.9)
        model.train()
        for _ in range(self.epochs):
            for images, labels in loader:
                logits = model(Tensor(images))
                loss = ops.cross_entropy(logits, labels)
                latency = None
                for mixed in mixed_ops.values():
                    term = mixed.expected_latency()
                    latency = term if latency is None else latency + term
                total = loss + latency * (self.latency_weight / max(len(mixed_ops), 1) * 1e3)
                optimizer.zero_grad()
                total.backward()
                optimizer.step()

        result = FBNetResult(supernet_parameters=model.num_parameters(),
                             epochs_trained=self.epochs)
        expected = 0.0
        for name, mixed in mixed_ops.items():
            result.selections[name] = mixed.best_kind()
            expected += float(mixed.expected_latency().data)
        result.expected_latency_seconds = expected
        return result
