"""Small shared utilities: seeding, product helpers, pretty formatting."""

from __future__ import annotations

import math
import time
from functools import lru_cache
from typing import Callable, Iterable, Sequence

import numpy as np

_DEFAULT_SEED = 0x5EED


def wait_until(predicate: Callable[[], object], *, timeout: float,
               interval: float = 0.02, description: str = "condition"):
    """Poll ``predicate`` until it returns a truthy value; deadline-based.

    The one wait primitive for everything that watches an asynchronous
    process (service tests, smoke tools, clients): a monotonic deadline
    with a capped exponential backoff, so slow CI runners get the full
    ``timeout`` rather than a fixed number of fixed-length sleeps, and
    fast paths return on the first cheap poll.  Returns the predicate's
    truthy value; raises :class:`TimeoutError` naming ``description``
    when the deadline passes.

    Example::

        record = wait_until(lambda: endpoint.exists() or None,
                            timeout=30.0, description="service endpoint")
    """
    if timeout <= 0:
        raise ValueError(f"wait_until() needs a positive timeout, "
                         f"got {timeout}")
    deadline = time.monotonic() + timeout
    pause = max(min(interval, 0.5), 1e-4)
    while True:
        value = predicate()
        if value:
            return value
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise TimeoutError(f"timed out after {timeout:.1f}s waiting "
                               f"for {description}")
        time.sleep(min(pause, remaining))
        pause = min(pause * 1.5, 0.5)


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Return a NumPy random generator with a stable default seed.

    All stochastic components of the library accept an explicit ``seed`` or
    ``rng`` so that experiments are reproducible run-to-run.
    """
    return np.random.default_rng(_DEFAULT_SEED if seed is None else seed)


def prod(values: Iterable[int]) -> int:
    """Integer product of an iterable (empty product is 1)."""
    result = 1
    for value in values:
        result *= int(value)
    return result


@lru_cache(maxsize=None)
def _divisors(n: int) -> tuple[int, ...]:
    """Memoised divisor enumeration; searches ask for the same extents
    thousands of times, so the factorisation is done once per value."""
    small, large = [], []
    for candidate in range(1, int(math.isqrt(n)) + 1):
        if n % candidate == 0:
            small.append(candidate)
            if candidate != n // candidate:
                large.append(n // candidate)
    return tuple(small + large[::-1])


def divisors(n: int) -> list[int]:
    """Return the sorted list of positive divisors of ``n``."""
    if n <= 0:
        raise ValueError(f"divisors() requires a positive integer, got {n}")
    # A fresh list per call: callers are free to mutate the result without
    # corrupting the cache behind everyone else's back.
    return list(_divisors(n))


def ceil_div(a: int, b: int) -> int:
    """Ceiling integer division."""
    if b <= 0:
        raise ValueError(f"ceil_div() requires a positive divisor, got {b}")
    return -(-a // b)


def human_count(value: float) -> str:
    """Format a count with K/M/G suffixes (e.g. parameter counts)."""
    if value >= 1e9:
        return f"{value / 1e9:.2f}G"
    if value >= 1e6:
        return f"{value / 1e6:.2f}M"
    if value >= 1e3:
        return f"{value / 1e3:.2f}K"
    return f"{value:.0f}"


def human_time(seconds: float) -> str:
    """Format a duration in the most readable unit."""
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f}ms"
    if seconds >= 1e-6:
        return f"{seconds * 1e6:.3f}us"
    return f"{seconds * 1e9:.1f}ns"


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values, used for aggregate speedups."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("geometric_mean() requires at least one value")
    if np.any(arr <= 0):
        raise ValueError("geometric_mean() requires strictly positive values")
    return float(np.exp(np.mean(np.log(arr))))
