"""Exception hierarchy for the repro library.

Every subsystem raises errors derived from :class:`ReproError` so callers
can distinguish library failures from programming errors in user code.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ShapeError(ReproError):
    """Raised when tensor shapes are incompatible for an operation."""


class AutogradError(ReproError):
    """Raised when the autograd tape is used incorrectly."""


class TransformError(ReproError):
    """Raised when a program transformation cannot be constructed."""


class LegalityError(TransformError):
    """Raised when a transformation is rejected by a legality check."""


class ScheduleError(ReproError):
    """Raised when a schedule primitive is applied incorrectly."""


class LoweringError(ReproError):
    """Raised when a tensor expression cannot be lowered to loop IR."""


class SearchError(ReproError):
    """Raised when a search procedure is misconfigured."""


class EngineError(ReproError):
    """Raised when the evaluation engine is misconfigured or its cache is corrupt."""


class ModelError(ReproError):
    """Raised when a neural-network model definition is invalid."""


class DataError(ReproError):
    """Raised when a dataset is misconfigured."""


class PlatformError(ReproError):
    """Raised when a hardware platform description is invalid."""
