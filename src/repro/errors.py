"""Exception hierarchy for the repro library.

Every subsystem raises errors derived from :class:`ReproError` so callers
can distinguish library failures from programming errors in user code.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library.

    Example::

        try:
            repro.optimize("resnet34", platform="tpu")
        except repro.ReproError as error:
            print(f"error: {error}")
    """


class ShapeError(ReproError):
    """Raised when tensor shapes are incompatible for an operation."""


class AutogradError(ReproError):
    """Raised when the autograd tape is used incorrectly."""


class TransformError(ReproError):
    """Raised when a program transformation cannot be constructed."""


class LegalityError(TransformError):
    """Raised when a transformation is rejected by a legality check.

    ``primitive`` names the Table-1 primitive whose application failed and
    ``reason`` states why, so searches can keep per-primitive rejection
    statistics instead of an undifferentiated rejection rate.
    """

    def __init__(self, message: str, *, primitive: str | None = None,
                 reason: str | None = None):
        super().__init__(message)
        self.primitive = primitive
        self.reason = reason if reason is not None else message


class ScheduleError(ReproError):
    """Raised when a schedule primitive is applied incorrectly."""


class LoweringError(ReproError):
    """Raised when a tensor expression cannot be lowered to loop IR."""


class SearchError(ReproError):
    """Raised when a search procedure is misconfigured."""


class EngineError(ReproError):
    """Raised when the evaluation engine is misconfigured or its cache is corrupt."""


class CacheStoreError(EngineError):
    """Raised when a sharded tuning-cache store is unreadable or misused.

    Subclasses :class:`EngineError` so callers that already guard the
    engine's persistence path catch store failures unchanged.
    """


class CheckpointError(ReproError):
    """Raised when a search checkpoint is unreadable or incompatible.

    The message always names the file and what was wrong with it, so a
    failed ``repro resume`` tells the operator whether to retry, fall
    back to an older checkpoint, or restart the search.

    Example::

        try:
            result = repro.resume_checkpoint("run.ckpt.json")
        except repro.CheckpointError as error:
            print(f"cannot resume: {error}")
    """


class ServiceError(ReproError):
    """Raised when the optimization service (daemon/client) fails.

    Covers both sides of the wire: a daemon that cannot bind or recover
    its state directory, and a client that cannot reach the endpoint,
    names an unknown job, or asks for the result of a job that is not
    done.  The message names the endpoint or job so operators can act.

    Example::

        try:
            result = client.result(job_id)
        except repro.ServiceError as error:
            print(f"service: {error}")
    """


class DegradedExecutionWarning(UserWarning):
    """A component failed and the system downgraded instead of aborting.

    Emitted (via :func:`warnings.warn`) when e.g. a corrupt cache shard
    is quarantined or the compile trie is disabled after an internal
    error: execution continues slower but correct.  ``component`` and
    ``reason`` make the warning machine-checkable.

    Example::

        with warnings.catch_warnings():
            warnings.simplefilter("error", repro.DegradedExecutionWarning)
            result = repro.optimize("resnet18")   # fail hard on degradation
    """

    def __init__(self, message: str, *, component: str | None = None,
                 reason: str | None = None):
        super().__init__(message)
        self.component = component
        self.reason = reason if reason is not None else message


class ModelError(ReproError):
    """Raised when a neural-network model definition is invalid."""


class DataError(ReproError):
    """Raised when a dataset is misconfigured."""


class PlatformError(ReproError):
    """Raised when a hardware platform description is invalid."""
