"""repro — NAS as program transformation exploration, behind one front door.

A reproduction of the ASPLOS'21 paper growing into a production system.
The curated surface below is the supported way in; everything else in the
package is implementation detail that may move between releases (the
stability policy is DESIGN.md §9).

Quick start::

    import repro

    result = repro.optimize("resnet34", platform="cpu", budget=60)
    print(f"{result.speedup:.2f}x over the tuned TVM-style baseline")

The same surface is reachable from a shell: ``python -m repro --help``
(or the ``repro`` console script once the package is installed).
"""

from repro.api import (
    MODEL_BUILDERS,
    LayerDecision,
    OptimizationRequest,
    OptimizationResult,
    OptimizationSession,
    TuningResult,
    build_model,
    list_platforms,
    list_sequences,
    optimize,
    program_from_dict,
    program_to_dict,
    resume_checkpoint,
    tune,
)
from repro.core.cache_store import CacheStore
from repro.core.checkpoint import SearchCheckpoint, read_checkpoint
from repro.core.encoding import FEATURE_NAMES, encode_candidate
from repro.core.engine import EvaluationEngine, SupervisionPolicy
from repro.core.events import Observable, Observer, ProgressEvent
from repro.core.faults import FaultPlan
from repro.core.predictor import LatencyPredictor
from repro.core.program import TransformProgram, step
from repro.core.search import UnifiedSearch, UnifiedSearchResult
from repro.core.sequences import predefined_program
from repro.core.unified_space import UnifiedSpaceConfig
from repro.errors import (
    CheckpointError,
    DegradedExecutionWarning,
    ReproError,
    ServiceError,
)
from repro.hardware.platform import PlatformSpec, get_platform
from repro.poly.statement import ConvolutionShape

#: Single-source package version (setup.py reads it from this file).
__version__ = "0.9.0"

#: The supported public surface.  Additions are backwards-compatible;
#: removals or renames require a major version bump (DESIGN.md §9).
__all__ = [
    # one-call façade + session
    "optimize", "tune", "OptimizationSession",
    # typed request / result documents
    "OptimizationRequest", "OptimizationResult", "LayerDecision", "TuningResult",
    # progress observation
    "Observable", "Observer", "ProgressEvent",
    # programs and shapes
    "TransformProgram", "step", "predefined_program",
    "program_to_dict", "program_from_dict", "ConvolutionShape",
    # models and platforms
    "MODEL_BUILDERS", "build_model", "PlatformSpec", "get_platform",
    "list_platforms", "list_sequences",
    # the engine/search layer for advanced callers
    "EvaluationEngine", "CacheStore", "UnifiedSearch", "UnifiedSearchResult",
    "UnifiedSpaceConfig",
    # the predictor-guided search subsystem
    "LatencyPredictor", "encode_candidate", "FEATURE_NAMES",
    # fault tolerance: checkpoint/resume, supervised execution, injection
    "resume_checkpoint", "SearchCheckpoint", "read_checkpoint",
    "SupervisionPolicy", "FaultPlan",
    # errors
    "ReproError", "CheckpointError", "ServiceError",
    "DegradedExecutionWarning",
    "__version__",
]
